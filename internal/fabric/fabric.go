// Package fabric simulates an RDMA network connecting compute-node clients
// to memory nodes, replacing the ConnectX-6 testbed of the paper.
//
// The simulation is exact in data and virtual in time. Every verb really
// moves bytes between the client and a mem.Region, with the same atomicity
// guarantees as one-sided RDMA (8-byte atomics, torn multi-line transfers).
// Time, however, is tracked on a per-client virtual clock, advanced by a
// configurable cost model:
//
//	completion = max(clock, nicQueue) + RTT + Σ per-op NIC cost
//
// where nicQueue is a per-memory-node NIC timeline shared by all clients.
// When aggregate demand exceeds a NIC's processing rate, the queue start
// time runs ahead of client clocks and both latency inflation and
// throughput saturation emerge — the phenomena behind the paper's Fig. 5.
//
// Doorbell batching (paper §III-A, [23]) is modelled by Batch: any number
// of verbs posted together costs a single round-trip latency, while each
// verb still pays its NIC processing and byte costs.
package fabric

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sphinx/internal/mem"
)

// Config is the network cost model. All costs are in picoseconds so that
// sub-nanosecond per-byte costs stay exact in integer arithmetic.
type Config struct {
	// RTTPs is the base round-trip latency for any verb or batch.
	RTTPs int64
	// PerVerbPs is the NIC processing cost per verb (per posted work
	// request), charged on the target memory node's NIC timeline.
	PerVerbPs int64
	// PerBytePs is the NIC cost per payload byte, charged likewise.
	// 40 fs/B ≈ 25 GB/s is stored as 0.04 ps via PerKBPs below; to keep
	// integers exact we charge per byte in femtoseconds.
	PerByteFs int64
	// ClientVerbPs is the CN-side cost of posting one verb (doorbell
	// write, WQE build, completion poll). It bounds the op rate a single
	// worker can sustain even on an idle network.
	ClientVerbPs int64
}

// DefaultConfig models the paper's testbed: ~2 µs RTT, 100 Gbps-class NIC.
//
//   - RTT 2 µs.
//   - Per-verb NIC cost 8 ns → ≈125 M verbs/s per MN NIC.
//   - Per-byte cost 40 fs → 25 GB/s per MN NIC.
//   - Client verb cost 150 ns (WQE post + CQ poll share).
func DefaultConfig() Config {
	return Config{
		RTTPs:        2_000_000,
		PerVerbPs:    8_000,
		PerByteFs:    40_000,
		ClientVerbPs: 150_000,
	}
}

// InstantConfig is a zero-cost model for functional tests and examples
// where timing is irrelevant.
func InstantConfig() Config { return Config{} }

// Kind enumerates the one-sided verbs.
type Kind uint8

// The verb set available to clients (paper §II-A).
const (
	Read Kind = iota
	Write
	CAS
	FAA
)

// String names the verb.
func (k Kind) String() string {
	switch k {
	case Read:
		return "READ"
	case Write:
		return "WRITE"
	case CAS:
		return "CAS"
	case FAA:
		return "FAA"
	default:
		return fmt.Sprintf("verb(%d)", uint8(k))
	}
}

// Op is one verb within a doorbell batch. For Read, Data is the destination
// buffer; for Write, the source. For CAS, Expect/Desired are the compare
// and swap operands; for FAA, Delta is the addend. After execution, Old
// holds the pre-image for CAS and FAA.
type Op struct {
	Kind    Kind
	Addr    mem.Addr
	Data    []byte
	Expect  uint64
	Desired uint64
	Delta   uint64
	Old     uint64
}

// nicSlotPs is the granularity of the NIC capacity timeline: each slot of
// virtual time offers nicSlotPs of processing capacity. One microsecond is
// fine enough that queueing delays resolve well below a round trip.
const nicSlotPs = 1_000_000

// nic is one memory node's NIC processing timeline, modelled as capacity
// per virtual-time slot. Unlike a single free-pointer queue, this lets a
// request whose issue time (virtual clock) lies in the past consume the
// capacity that was genuinely idle then — necessary because worker
// goroutines reach the simulated NIC in real-scheduling order, not
// virtual-time order. Saturation still emerges: when aggregate demand
// around an instant exceeds slot capacity, requests spill into later
// slots and completion times stretch.
type nic struct {
	mu    sync.Mutex
	slots map[int64]int64 // slot index → capacity already consumed (ps)
	// cumulative demand counters, for utilization reports
	busyPs int64
	waitPs int64 // queueing delay: reservations pushed past their ready time
	verbs  uint64
	bytes  uint64
	rts    uint64 // completed batches whose completion this NIC gated
	faults uint64 // injected faults charged to batches targeting this NIC
}

// chargeFault counts one injected fault against this NIC.
func (n *nic) chargeFault() {
	n.mu.Lock()
	n.faults++
	n.mu.Unlock()
}

// chargeRT attributes one completed doorbell batch to this NIC. Each
// batch is charged to exactly one NIC — the one whose reservation
// finish time gated the batch's completion — so summing rts across
// nodes always equals the clients' RoundTrips total, giving per-MN
// round-trip accounting that reconciles exactly.
func (n *nic) chargeRT() {
	n.mu.Lock()
	n.rts++
	n.mu.Unlock()
}

// reserve books cost picoseconds of NIC time no earlier than notBefore and
// returns the start time of the reservation.
func (n *nic) reserve(notBefore, cost int64, verbs int, bytes uint64) int64 {
	n.mu.Lock()
	if n.slots == nil {
		n.slots = make(map[int64]int64)
	}
	slot := notBefore / nicSlotPs
	start := int64(-1)
	rem := cost
	for rem > 0 {
		avail := nicSlotPs - n.slots[slot]
		if avail > 0 {
			if start < 0 {
				start = slot * nicSlotPs
				if notBefore > start {
					start = notBefore
				}
			}
			take := avail
			if rem < take {
				take = rem
			}
			n.slots[slot] += take
			rem -= take
		}
		slot++
	}
	if start < 0 {
		start = notBefore
	}
	if start > notBefore {
		// The NIC was saturated when this batch arrived: the gap is pure
		// queueing delay, the per-MN hotspot signal load balancing watches.
		n.waitPs += start - notBefore
	}
	n.busyPs += cost
	n.verbs += uint64(verbs)
	n.bytes += bytes
	n.mu.Unlock()
	return start
}

type node struct {
	region *mem.Region
	nic    nic
}

// Fabric is the simulated cluster interconnect plus the set of attached
// memory nodes. Construct it once, attach memory nodes, then create one
// Client per worker.
type Fabric struct {
	cfg    Config
	mu     sync.Mutex
	nodes  []*node
	plan   *FaultPlan
	nextID int

	// health is the shared per-MN breaker table; always allocated, gating
	// off by default. killed flags permanently lost nodes (KillNode) — the
	// injected ground truth, distinct from the observed breaker state.
	health *Health
	killed [mem.MaxNodes]uint32

	// Trace, if set before any client runs, is invoked after every verb
	// executes (under no locks). Test-only: used to reconstruct event
	// orders when debugging protocol races.
	Trace func(client *Client, op *Op)
}

// New creates a fabric with the given cost model.
func New(cfg Config) *Fabric { return &Fabric{cfg: cfg, health: NewHealth()} }

// Health returns the fabric's shared per-MN health tracker.
func (f *Fabric) Health() *Health { return f.health }

// KillNode permanently kills a memory node: unlike a DownWindow, the node
// never comes back. Every subsequent verb targeting it fails with
// ErrNodeKilled; the node's data is treated as lost (reads against its
// region are no longer served). The health tracker learns of the death on
// first contact (one charged round trip), after which gated clients reject
// locally at zero cost.
func (f *Fabric) KillNode(id mem.NodeID) {
	atomic.StoreUint32(&f.killed[id], 1)
}

// NodeKilled reports whether the node has been permanently killed.
func (f *Fabric) NodeKilled(id mem.NodeID) bool {
	return atomic.LoadUint32(&f.killed[id]) != 0
}

// Config returns the fabric's cost model.
func (f *Fabric) Config() Config { return f.cfg }

// SetFaultPlan installs a fault schedule. Call it before creating the
// clients that should observe it: each client derives its deterministic
// fault stream from the plan's seed at creation time. A nil plan (the
// default) injects nothing and adds no per-verb overhead.
func (f *Fabric) SetFaultPlan(p *FaultPlan) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plan = p
}

// FaultPlan returns the installed fault schedule, or nil.
func (f *Fabric) FaultPlan() *FaultPlan {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.plan
}

// AddNode attaches a memory node with a region of the given size and
// returns its ID. The region's allocator header is initialized.
func (f *Fabric) AddNode(size uint64) mem.NodeID {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.nodes) >= mem.MaxNodes {
		panic("fabric: too many memory nodes")
	}
	id := mem.NodeID(len(f.nodes))
	r := mem.NewRegion(id, size)
	mem.InitRegionHeader(r)
	f.nodes = append(f.nodes, &node{region: r})
	return id
}

// NumNodes returns the number of attached memory nodes.
func (f *Fabric) NumNodes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.nodes)
}

// Region exposes a node's region for bootstrap-time direct access
// (mem.DirectOps) and white-box tests. Index code must not use it.
func (f *Fabric) Region(id mem.NodeID) *mem.Region {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nodes[id].region
}

// Regions returns a DirectOps view over all attached regions for
// bootstrap-time allocation.
func (f *Fabric) Regions() mem.DirectOps {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := make(map[mem.NodeID]*mem.Region, len(f.nodes))
	for i, n := range f.nodes {
		m[mem.NodeID(i)] = n.region
	}
	return mem.DirectOps{Regions: m}
}

func (f *Fabric) node(id mem.NodeID) (*node, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if int(id) >= len(f.nodes) {
		return nil, fmt.Errorf("fabric: unknown memory node %d", id)
	}
	return f.nodes[id], nil
}

// RegionSize returns the size of a node's region, so clients can clamp
// speculative over-reads (e.g., of variable-size leaves) at the region
// boundary, as a real RDMA client would clamp at its registered MR length.
func (f *Fabric) RegionSize(id mem.NodeID) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if int(id) >= len(f.nodes) {
		return 0
	}
	return f.nodes[id].region.Size()
}

// ResetTimelines zeroes every NIC's queue timeline so a new measurement
// phase starts from an idle network, the way a real experiment separates
// its load and run phases. Cumulative NIC counters are preserved. Callers
// must ensure no client is mid-operation.
func (f *Fabric) ResetTimelines() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, n := range f.nodes {
		n.nic.mu.Lock()
		n.nic.slots = nil
		n.nic.mu.Unlock()
	}
}

// NICStats is a snapshot of one memory node's NIC counters.
type NICStats struct {
	Node   mem.NodeID
	BusyPs int64
	// WaitPs is cumulative queueing delay: how long arriving batches had
	// to wait for a saturated NIC. A node whose WaitPs grows much faster
	// than its peers' is a placement hotspot — the signal the elastic
	// rebalancing experiment tracks before and after a membership change.
	WaitPs int64
	Verbs  uint64
	Bytes  uint64
	// RoundTrips counts completed doorbell batches attributed to this
	// node: each batch is charged to the single NIC whose reservation
	// gated its completion (ties break to the lowest node ID), so the
	// sum over all nodes equals the clients' RoundTrips total exactly.
	RoundTrips uint64
	Faults     uint64 // injected faults on batches targeting this NIC
}

// NICStats returns the NIC counters of every node.
func (f *Fabric) NICStats() []NICStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]NICStats, len(f.nodes))
	for i, n := range f.nodes {
		n.nic.mu.Lock()
		out[i] = NICStats{Node: mem.NodeID(i), BusyPs: n.nic.busyPs, WaitPs: n.nic.waitPs, Verbs: n.nic.verbs, Bytes: n.nic.bytes, RoundTrips: n.nic.rts, Faults: n.nic.faults}
		n.nic.mu.Unlock()
	}
	return out
}

func opBytes(op *Op) uint64 {
	switch op.Kind {
	case Read, Write:
		return uint64(len(op.Data))
	default:
		return 8
	}
}
