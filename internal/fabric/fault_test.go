package fabric

import (
	"errors"
	"testing"

	"sphinx/internal/mem"
)

// writeOps builds n single-byte writes of distinct values at consecutive
// offsets, so memory afterwards shows exactly which verbs executed.
func writeOps(id mem.NodeID, base uint64, n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Kind: Write, Addr: mem.NewAddr(id, base+uint64(i)), Data: []byte{byte(i + 1)}}
	}
	return ops
}

// executedPrefix counts how many of the n writes landed in memory.
func executedPrefix(f *Fabric, id mem.NodeID, base uint64, n int) int {
	buf := make([]byte, n)
	f.Region(id).Read(base, buf)
	for i := range buf {
		if buf[i] != byte(i+1) {
			return i
		}
	}
	return n
}

func TestTransientFaultExecutesPrefix(t *testing.T) {
	f, id := newTestFabric(InstantConfig())
	f.SetFaultPlan(&FaultPlan{Seed: 1, TransientPer64k: 65536})
	c := f.NewClient()
	err := c.Batch(writeOps(id, 0, 8))
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
	st := c.Stats()
	if st.Transients != 1 {
		t.Errorf("Transients = %d, want 1", st.Transients)
	}
	// Exactly the verbs before the failing one executed, and the stats
	// agree with memory.
	if got := executedPrefix(f, id, 0, 8); uint64(got) != st.Verbs {
		t.Errorf("memory shows %d executed verbs, stats say %d", got, st.Verbs)
	}
	if st.Verbs >= 8 {
		t.Errorf("Verbs = %d, want < 8 (a verb must have failed)", st.Verbs)
	}
	if st.RoundTrips != 1 {
		t.Errorf("RoundTrips = %d, want 1 (failed batch still costs its trip)", st.RoundTrips)
	}
}

func TestTimeoutExecutesFully(t *testing.T) {
	f, id := newTestFabric(InstantConfig())
	f.SetFaultPlan(&FaultPlan{Seed: 2, TimeoutPer64k: 65536, TimeoutPs: 5_000_000})
	c := f.NewClient()
	before := c.Clock()
	err := c.Batch(writeOps(id, 0, 4))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if got := executedPrefix(f, id, 0, 4); got != 4 {
		t.Errorf("%d/4 verbs executed; a timeout loses the completion, not the batch", got)
	}
	if st := c.Stats(); st.Timeouts != 1 || st.Verbs != 4 {
		t.Errorf("stats = %+v, want Timeouts=1 Verbs=4", st)
	}
	if waited := c.Clock() - before; waited < 5_000_000 {
		t.Errorf("clock advanced %d ps, want >= the 5ms timeout", waited)
	}
}

func TestDelayCompletesLate(t *testing.T) {
	f, id := newTestFabric(InstantConfig())
	f.SetFaultPlan(&FaultPlan{Seed: 3, DelayPer64k: 65536, DelayPs: 7_000_000})
	c := f.NewClient()
	before := c.Clock()
	if err := c.Batch(writeOps(id, 0, 2)); err != nil {
		t.Fatalf("a delay is not an error: %v", err)
	}
	if st := c.Stats(); st.Delays != 1 {
		t.Errorf("Delays = %d, want 1", st.Delays)
	}
	if waited := c.Clock() - before; waited < 7_000_000 {
		t.Errorf("clock advanced %d ps, want >= the 7ms spike", waited)
	}
}

func TestNodeDownWindow(t *testing.T) {
	f, id := newTestFabric(InstantConfig())
	f.SetFaultPlan(&FaultPlan{Seed: 4, Down: []DownWindow{{Node: id, FromPs: 0, ToPs: 1_000_000_000}}})
	c := f.NewClient()
	err := c.Batch(writeOps(id, 0, 3))
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
	if got := executedPrefix(f, id, 0, 3); got != 0 {
		t.Errorf("%d verbs executed against a down node", got)
	}
	if st := c.Stats(); st.NodeDownRejects != 1 || st.Verbs != 0 {
		t.Errorf("stats = %+v, want NodeDownRejects=1 Verbs=0", st)
	}
	// A retry loop's backoff advances the clock past the window, after
	// which the node is reachable again.
	c.AdvanceClock(1_000_000_000 - c.Clock())
	if err := c.Batch(writeOps(id, 0, 3)); err != nil {
		t.Fatalf("after the window: %v", err)
	}
	if got := executedPrefix(f, id, 0, 3); got != 3 {
		t.Errorf("%d/3 verbs executed after the window", got)
	}
}

func TestCrashAfterVerbs(t *testing.T) {
	f, id := newTestFabric(InstantConfig())
	f.SetFaultPlan(&FaultPlan{Seed: 5, CrashAfterVerbs: map[int]uint64{0: 3}})
	c := f.NewClient()
	if c.ID() != 0 {
		t.Fatalf("first client ID = %d, want 0", c.ID())
	}
	if err := c.Batch(writeOps(id, 0, 2)); err != nil {
		t.Fatalf("verbs 1-2 are before the crash point: %v", err)
	}
	err := c.Batch(writeOps(id, 2, 2))
	if !errors.Is(err, ErrClientCrashed) {
		t.Fatalf("err = %v, want ErrClientCrashed", err)
	}
	if !c.Crashed() {
		t.Error("client not marked crashed")
	}
	// Verb 3 (the first of the second batch) executed; verb 4 did not.
	if got := executedPrefix(f, id, 2, 2); got != 1 {
		t.Errorf("second batch executed %d verbs, want 1", got)
	}
	// The client is dead for good.
	if err := c.Batch(writeOps(id, 8, 1)); !errors.Is(err, ErrClientCrashed) {
		t.Errorf("post-crash batch err = %v, want ErrClientCrashed", err)
	}
}

// TestNoBatchStopsAtFailingVerb pins SetNoBatch's error propagation: when
// batching is disabled, each verb is its own batch, and the first failing
// verb must stop the remaining ones.
func TestNoBatchStopsAtFailingVerb(t *testing.T) {
	f, id := newTestFabric(InstantConfig())
	f.SetFaultPlan(&FaultPlan{Seed: 6, CrashAfterVerbs: map[int]uint64{0: 2}})
	c := f.NewClient()
	c.SetNoBatch(true)
	err := c.Batch(writeOps(id, 0, 6))
	if !errors.Is(err, ErrClientCrashed) {
		t.Fatalf("err = %v, want ErrClientCrashed", err)
	}
	if got := executedPrefix(f, id, 0, 6); got != 2 {
		t.Errorf("%d verbs executed, want exactly 2 (verbs after the failure must not run)", got)
	}
	if st := c.Stats(); st.Verbs != 2 {
		t.Errorf("Verbs = %d, want 2", st.Verbs)
	}
}

// TestNoBatchTransientStopsRemaining is the same property under a
// probabilistic fault: once a sub-batch fails transiently, no later verb
// of the original batch may execute.
func TestNoBatchTransientStopsRemaining(t *testing.T) {
	f, id := newTestFabric(InstantConfig())
	f.SetFaultPlan(&FaultPlan{Seed: 7, TransientPer64k: 65536})
	c := f.NewClient()
	c.SetNoBatch(true)
	err := c.Batch(writeOps(id, 0, 5))
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
	// Always-transient single-verb batches execute nothing at all.
	if got := executedPrefix(f, id, 0, 5); got != 0 {
		t.Errorf("%d verbs executed, want 0", got)
	}
}

// TestFaultDeterminism: same plan seed, same workload → the same sequence
// of fault outcomes and the same final memory image.
func TestFaultDeterminism(t *testing.T) {
	run := func() ([]error, []byte, Stats) {
		f, id := newTestFabric(InstantConfig())
		f.SetFaultPlan(&FaultPlan{Seed: 42, TransientPer64k: 8192, TimeoutPer64k: 4096, DelayPer64k: 4096})
		c := f.NewClient()
		var errs []error
		for i := 0; i < 200; i++ {
			errs = append(errs, c.Batch(writeOps(id, uint64(8*i), 8)))
		}
		img := make([]byte, 8*200)
		f.Region(id).Read(0, img)
		return errs, img, c.Stats()
	}
	e1, m1, s1 := run()
	e2, m2, s2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	if s1.Transients == 0 || s1.Timeouts == 0 || s1.Delays == 0 {
		t.Fatalf("workload too small to exercise all fault classes: %+v", s1)
	}
	for i := range e1 {
		if (e1[i] == nil) != (e2[i] == nil) ||
			(e1[i] != nil && e1[i].Error() != e2[i].Error()) {
			t.Fatalf("batch %d outcome diverged: %v vs %v", i, e1[i], e2[i])
		}
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("memory diverged at byte %d", i)
		}
	}
}

// TestZeroPlanIsFree: installing an all-zero plan changes no accounting
// relative to no plan at all — same round trips, verbs and virtual time.
func TestZeroPlanIsFree(t *testing.T) {
	run := func(install bool) (Stats, int64) {
		f, id := newTestFabric(DefaultConfig())
		if install {
			f.SetFaultPlan(&FaultPlan{Seed: 9})
		}
		c := f.NewClient()
		for i := 0; i < 50; i++ {
			if err := c.Batch(writeOps(id, uint64(8*i), 8)); err != nil {
				t.Fatal(err)
			}
		}
		return c.Stats(), c.Clock()
	}
	sNone, clkNone := run(false)
	sZero, clkZero := run(true)
	if sNone != sZero {
		t.Errorf("stats with zero plan %+v != without plan %+v", sZero, sNone)
	}
	if clkNone != clkZero {
		t.Errorf("clock with zero plan %d != without plan %d", clkZero, clkNone)
	}
}

// TestNICFaultCounters: injected faults are charged to the target NIC.
func TestNICFaultCounters(t *testing.T) {
	f, id := newTestFabric(InstantConfig())
	f.SetFaultPlan(&FaultPlan{Seed: 10, TransientPer64k: 65536})
	c := f.NewClient()
	for i := 0; i < 5; i++ {
		_ = c.Batch(writeOps(id, 0, 4))
	}
	stats := f.NICStats()
	if stats[0].Faults != 5 {
		t.Errorf("NIC faults = %d, want 5", stats[0].Faults)
	}
}

// TestBackoffDeterministicAndCapped: the shared backoff policy draws its
// jitter from the client's seeded stream and never exceeds its cap.
func TestBackoffDeterministicAndCapped(t *testing.T) {
	seq := func() []int64 {
		f, _ := newTestFabric(InstantConfig())
		f.SetFaultPlan(&FaultPlan{Seed: 11})
		c := f.NewClient()
		bo := BackoffPolicy{BasePs: 1000, CapPs: 64_000, Budget: 20}.Start(c)
		var waits []int64
		prev := c.Clock()
		for bo.Wait() {
			waits = append(waits, c.Clock()-prev)
			prev = c.Clock()
		}
		return waits
	}
	w1, w2 := seq(), seq()
	if len(w1) != 20 {
		t.Fatalf("budget of 20 yielded %d waits", len(w1))
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("wait %d diverged: %d vs %d", i, w1[i], w2[i])
		}
		if w1[i] <= 0 || w1[i] > 64_000 {
			t.Errorf("wait %d = %d ps outside (0, cap]", i, w1[i])
		}
	}
	// Exponential growth up to the cap: later waits dominate early ones.
	if w1[10] < w1[0] {
		t.Errorf("backoff not growing: wait[10]=%d < wait[0]=%d", w1[10], w1[0])
	}
}
