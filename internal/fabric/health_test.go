package fabric

import (
	"errors"
	"testing"

	"sphinx/internal/mem"
)

func TestKillNodePermanent(t *testing.T) {
	f := New(InstantConfig())
	n0 := f.AddNode(1 << 20)
	c := f.NewClient()

	addr := mem.NewAddr(n0, 64)
	if err := c.WriteUint64(addr, 7); err != nil {
		t.Fatalf("write before kill: %v", err)
	}
	f.KillNode(n0)
	for i := 0; i < 5; i++ {
		_, err := c.ReadUint64(addr)
		if !errors.Is(err, ErrNodeKilled) {
			t.Fatalf("read %d after kill: err = %v, want ErrNodeKilled", i, err)
		}
		if !errors.Is(err, ErrNodeDown) {
			t.Fatalf("ErrNodeKilled must wrap ErrNodeDown (got %v)", err)
		}
	}
	if f.Health().State(n0) != HealthDead {
		t.Errorf("health state after contact = %v, want dead", f.Health().State(n0))
	}
	if st := c.Stats(); st.NodeDownRejects == 0 {
		t.Error("kill rejections not counted")
	}
}

func TestKillNodeGatedRejectIsFree(t *testing.T) {
	f := New(DefaultConfig())
	n0 := f.AddNode(1 << 20)
	f.Health().EnableGating(true)
	c := f.NewClient()
	addr := mem.NewAddr(n0, 64)

	f.KillNode(n0)
	// Discovery contact pays one RTT and marks the node dead.
	if _, err := c.ReadUint64(addr); !errors.Is(err, ErrNodeKilled) {
		t.Fatalf("discovery read: %v", err)
	}
	clock := c.Clock()
	if clock == 0 {
		t.Fatal("discovery contact should cost a round trip")
	}
	// Subsequent contacts are rejected by the breaker at zero cost.
	for i := 0; i < 10; i++ {
		if _, err := c.ReadUint64(addr); !errors.Is(err, ErrNodeKilled) {
			t.Fatalf("gated read %d: %v", i, err)
		}
	}
	if c.Clock() != clock {
		t.Errorf("gated rejects advanced the clock by %dps", c.Clock()-clock)
	}
	if st := c.Stats(); st.HealthRejects != 10 {
		t.Errorf("HealthRejects = %d, want 10", st.HealthRejects)
	}
}

func TestBreakerOpensOnDownWindowAndProbesHalfOpen(t *testing.T) {
	f := New(InstantConfig())
	n0 := f.AddNode(1 << 20)
	f.SetFaultPlan(&FaultPlan{Seed: 1, Down: []DownWindow{{Node: n0, FromPs: 0, ToPs: 1 << 60}}})
	f.Health().EnableGating(true)
	c := f.NewClient()
	addr := mem.NewAddr(n0, 64)

	// failThreshold down-window rejections open the breaker.
	for i := 0; i < failThreshold; i++ {
		if _, err := c.ReadUint64(addr); !errors.Is(err, ErrNodeDown) {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if got := f.Health().State(n0); got != HealthOpen {
		t.Fatalf("state after %d failures = %v, want open", failThreshold, got)
	}
	// While open, most attempts are rejected locally; every probeInterval-th
	// goes through as a probe (and keeps failing against the down window).
	st0 := c.Stats()
	for i := 0; i < 4*probeInterval; i++ {
		if _, err := c.ReadUint64(addr); !errors.Is(err, ErrNodeDown) {
			t.Fatalf("open read %d: %v", i, err)
		}
	}
	d := c.Stats().Sub(st0)
	if d.HealthRejects == 0 || d.NodeDownRejects == 0 {
		t.Fatalf("want both local rejects and probes, got health=%d down=%d",
			d.HealthRejects, d.NodeDownRejects)
	}
	// End the outage: a successful probe closes the breaker.
	f.SetFaultPlan(&FaultPlan{Seed: 1})
	c2 := f.NewClient()
	deadline := 4 * probeInterval
	var recovered bool
	for i := 0; i < deadline; i++ {
		if _, err := c2.ReadUint64(addr); err == nil {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatal("no probe succeeded after the outage ended")
	}
	if got := f.Health().State(n0); got != HealthClosed {
		t.Errorf("state after successful probe = %v, want closed", got)
	}
}

func TestHealthObservationalWithoutGating(t *testing.T) {
	f := New(InstantConfig())
	n0 := f.AddNode(1 << 20)
	f.SetFaultPlan(&FaultPlan{Seed: 1, Down: []DownWindow{{Node: n0, FromPs: 0, ToPs: 1 << 60}}})
	c := f.NewClient()
	addr := mem.NewAddr(n0, 64)
	for i := 0; i < 4*failThreshold; i++ {
		if _, err := c.ReadUint64(addr); !errors.Is(err, ErrNodeDown) {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	// The breaker opened — but with gating off, nothing was rejected
	// locally: behaviour (and clocks) match the pre-health fabric exactly.
	if got := f.Health().State(n0); got != HealthOpen {
		t.Errorf("state = %v, want open (observational)", got)
	}
	if st := c.Stats(); st.HealthRejects != 0 {
		t.Errorf("HealthRejects = %d with gating off", st.HealthRejects)
	}
}
