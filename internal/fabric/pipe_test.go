package fabric

import (
	"errors"
	"sync"
	"testing"

	"sphinx/internal/mem"
)

// runLanes drives each lane's batch sequence on its own goroutine inside
// one BeginLanes/Done window, mirroring how core.Pipeline uses the pipe.
func runLanes(p *Pipe, lanes []*Client, work func(i int, lane *Client)) {
	p.BeginLanes(lanes)
	var wg sync.WaitGroup
	for i := range lanes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer p.Done(lanes[i])
			work(i, lanes[i])
		}(i)
	}
	wg.Wait()
}

func TestPipeCoalescesLaneBatches(t *testing.T) {
	f, id := newTestFabric(DefaultConfig())
	main := f.NewClient()
	p := NewPipe(main)
	const lanesN = 4
	lanes := make([]*Client, lanesN)
	for i := range lanes {
		lanes[i] = p.NewLane()
	}
	// Each lane writes then reads its own word: two batch rounds.
	runLanes(p, lanes, func(i int, lane *Client) {
		addr := mem.NewAddr(id, uint64(64+8*i))
		if err := lane.WriteUint64(addr, uint64(100+i)); err != nil {
			t.Error(err)
			return
		}
		v, err := lane.ReadUint64(addr)
		if err != nil {
			t.Error(err)
			return
		}
		if v != uint64(100+i) {
			t.Errorf("lane %d read %d", i, v)
		}
	})
	st := main.Stats()
	if st.RoundTrips != 2 {
		t.Errorf("RoundTrips = %d, want 2 (one per coalesced stage)", st.RoundTrips)
	}
	if st.Verbs != 2*lanesN {
		t.Errorf("Verbs = %d, want %d", st.Verbs, 2*lanesN)
	}
	for i, lane := range lanes {
		if ls := lane.Stats(); ls != (Stats{}) {
			t.Errorf("lane %d accumulated stats %+v; all accounting belongs to main", i, ls)
		}
		if lane.Clock() != main.Clock() {
			t.Errorf("lane %d clock %d != main %d", i, lane.Clock(), main.Clock())
		}
	}
	if fl, verbs := p.Coalesced(); fl != 2 || verbs != 2*lanesN {
		t.Errorf("Coalesced() = (%d, %d), want (2, %d)", fl, verbs, 2*lanesN)
	}
}

func TestPipeCASOldCopyback(t *testing.T) {
	f, id := newTestFabric(InstantConfig())
	main := f.NewClient()
	p := NewPipe(main)
	addr := mem.NewAddr(id, 128)
	lanes := []*Client{p.NewLane(), p.NewLane()}
	olds := make([]uint64, len(lanes))
	runLanes(p, lanes, func(i int, lane *Client) {
		old, err := lane.FetchAdd(addr, 10)
		if err != nil {
			t.Error(err)
			return
		}
		olds[i] = old
	})
	// Merged flush executes in lane-ID order: pre-images must be 0, 10.
	if olds[0] != 0 || olds[1] != 10 {
		t.Errorf("FAA pre-images = %v, want [0 10]", olds)
	}
	if v, _ := main.ReadUint64(addr); v != 20 {
		t.Errorf("counter = %d, want 20", v)
	}
}

func TestPipeSingleLaneMatchesSequential(t *testing.T) {
	cfg := DefaultConfig()
	f, id := newTestFabric(cfg)
	seq := f.NewClient()

	f2 := New(cfg)
	id2 := f2.AddNode(1 << 20)
	if id2 != id {
		t.Fatalf("node ids diverge: %d vs %d", id2, id)
	}
	main := f2.NewClient()
	p := NewPipe(main)
	lane := p.NewLane()

	buf := make([]byte, 64)
	for i := 0; i < 5; i++ {
		addr := mem.NewAddr(id, uint64(512+64*i))
		if err := seq.Write(addr, buf); err != nil {
			t.Fatal(err)
		}
		if err := seq.Read(addr, buf); err != nil {
			t.Fatal(err)
		}
	}
	runLanes(p, []*Client{lane}, func(_ int, lane *Client) {
		for i := 0; i < 5; i++ {
			addr := mem.NewAddr(id2, uint64(512+64*i))
			if err := lane.Write(addr, buf); err != nil {
				t.Error(err)
				return
			}
			if err := lane.Read(addr, buf); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if s, m := seq.Stats(), main.Stats(); s != m {
		t.Errorf("depth-1 pipe stats %+v != sequential %+v", m, s)
	}
	if seq.Clock() != main.Clock() {
		t.Errorf("depth-1 pipe clock %d != sequential %d", main.Clock(), seq.Clock())
	}
}

// TestPipeTransientDemux forces every batch to fail transiently and
// checks the per-lane demux invariant: a lane fails only if the
// truncation point landed inside or before its verb range, so an
// earlier-ordered lane never fails while a later one succeeds.
func TestPipeTransientDemux(t *testing.T) {
	f := New(DefaultConfig())
	id := f.AddNode(1 << 20)
	f.SetFaultPlan(&FaultPlan{Seed: 7, TransientPer64k: 1 << 16}) // always
	main := f.NewClient()
	p := NewPipe(main)
	lanes := []*Client{p.NewLane(), p.NewLane(), p.NewLane()}

	var mu sync.Mutex
	errsByRound := make([][]error, 8)
	for r := range errsByRound {
		errsByRound[r] = make([]error, len(lanes))
	}
	runLanes(p, lanes, func(i int, lane *Client) {
		var word [8]byte
		for r := 0; r < len(errsByRound); r++ {
			err := lane.Read(mem.NewAddr(id, uint64(8*i)), word[:])
			mu.Lock()
			errsByRound[r][i] = err
			mu.Unlock()
		}
	})
	sawPartial := false
	for r, errs := range errsByRound {
		for i, err := range errs {
			if err != nil && !errors.Is(err, ErrTransient) {
				t.Fatalf("round %d lane %d: unexpected error %v", r, i, err)
			}
			if i > 0 && errs[i-1] != nil && err == nil {
				t.Errorf("round %d: lane %d failed but later lane %d succeeded", r, i-1, i)
			}
		}
		if errs[0] == nil && errs[len(errs)-1] != nil {
			sawPartial = true
		}
		_ = r
	}
	if !sawPartial {
		t.Error("no round demuxed a partial success; truncation points never split the lanes")
	}
	if st := main.Stats(); st.Transients != uint64(len(errsByRound)) {
		t.Errorf("Transients = %d, want %d (one roll set per flush)", st.Transients, len(errsByRound))
	}
}

// TestPipeFlushAfterDone checks that a lane finishing its work releases
// the flush it was holding back.
func TestPipeFlushAfterDone(t *testing.T) {
	f, id := newTestFabric(DefaultConfig())
	main := f.NewClient()
	p := NewPipe(main)
	lanes := []*Client{p.NewLane(), p.NewLane()}
	var word [8]byte
	runLanes(p, lanes, func(i int, lane *Client) {
		rounds := 1 + 2*i // lane 0 posts 1 batch, lane 1 posts 3
		for r := 0; r < rounds; r++ {
			if err := lane.Read(mem.NewAddr(id, uint64(8*i)), word[:]); err != nil {
				t.Error(err)
			}
		}
	})
	// Flush 1 carries both lanes; lane 1's remaining 2 batches flush alone.
	if got := p.Flushes(); got != 3 {
		t.Errorf("Flushes = %d, want 3", got)
	}
	if st := main.Stats(); st.RoundTrips != 3 || st.Verbs != 4 {
		t.Errorf("stats = %d RTs / %d verbs, want 3 / 4", st.RoundTrips, st.Verbs)
	}
}

// TestPipeIdleDirectExecution: outside a BeginLanes window a lane's
// batches execute immediately, one flush each.
func TestPipeIdleDirectExecution(t *testing.T) {
	f, id := newTestFabric(DefaultConfig())
	main := f.NewClient()
	p := NewPipe(main)
	lane := p.NewLane()
	var word [8]byte
	for i := 0; i < 3; i++ {
		if err := lane.Read(mem.NewAddr(id, 0), word[:]); err != nil {
			t.Fatal(err)
		}
	}
	if st := main.Stats(); st.RoundTrips != 3 {
		t.Errorf("RoundTrips = %d, want 3", st.RoundTrips)
	}
}
