package fabric

import (
	"testing"

	"sphinx/internal/mem"
)

func sumNICRTs(f *Fabric) uint64 {
	var total uint64
	for _, s := range f.NICStats() {
		total += s.RoundTrips
	}
	return total
}

// TestNICRoundTripAttribution checks that every completed doorbell batch
// is charged to exactly one NIC: single-node batches charge their
// target, multi-node batches charge only the gating node, and the
// per-node totals always sum to the clients' RoundTrips.
func TestNICRoundTripAttribution(t *testing.T) {
	f := New(DefaultConfig())
	a := f.AddNode(1 << 20)
	b := f.AddNode(1 << 20)
	c := f.NewClient()

	// Single-node batches: each charged to its own target.
	if err := c.Batch(writeOps(a, 0, 4)); err != nil {
		t.Fatal(err)
	}
	if err := c.Batch(writeOps(b, 0, 2)); err != nil {
		t.Fatal(err)
	}
	st := f.NICStats()
	if st[a].RoundTrips != 1 || st[b].RoundTrips != 1 {
		t.Fatalf("single-node attribution: a=%d b=%d, want 1/1", st[a].RoundTrips, st[b].RoundTrips)
	}

	// A batch spanning both nodes is still one round trip, charged to
	// exactly one of them (the heavier share gates completion).
	ops := append(writeOps(a, 64, 1), Op{Kind: Write, Addr: mem.NewAddr(b, 64),
		Data: make([]byte, 4096)})
	if err := c.Batch(ops); err != nil {
		t.Fatal(err)
	}
	st = f.NICStats()
	if got := st[a].RoundTrips + st[b].RoundTrips; got != 3 {
		t.Fatalf("after spanning batch total NIC rts = %d, want 3", got)
	}
	if st[b].RoundTrips != 2 {
		t.Fatalf("spanning batch charged to node %v, want the 4 KiB share on b", st)
	}
	if got, want := sumNICRTs(f), c.RoundTrips(); got != want {
		t.Fatalf("NIC rts %d != client rts %d", got, want)
	}
}

// TestNICRoundTripsReconcileUnderFaults runs a fault-heavy multi-node
// workload and checks the invariant Σ per-NIC RoundTrips == Σ client
// RoundTrips: rejected, crashed, and node-down batches charge neither
// side; transient and timeout batches charge both.
func TestNICRoundTripsReconcileUnderFaults(t *testing.T) {
	f := New(DefaultConfig())
	a := f.AddNode(1 << 20)
	b := f.AddNode(1 << 20)
	d := f.AddNode(1 << 20)
	f.SetFaultPlan(&FaultPlan{
		Seed:            42,
		TransientPer64k: 3000,
		TimeoutPer64k:   1500,
		DelayPer64k:     1500,
		Down:            []DownWindow{{Node: d, FromPs: 0, ToPs: 1 << 40}},
	})

	nodes := []mem.NodeID{a, b, d}
	var clientRTs uint64
	for w := 0; w < 4; w++ {
		c := f.NewClient()
		for i := 0; i < 300; i++ {
			n1 := nodes[i%3]
			n2 := nodes[(i+1)%3]
			ops := writeOps(n1, uint64(128+i), 2)
			if i%4 == 0 { // every fourth batch spans two nodes
				ops = append(ops, Op{Kind: Write, Addr: mem.NewAddr(n2, uint64(4096 + i)),
					Data: []byte{0xff}})
			}
			_ = c.Batch(ops) // faults expected; accounting is what's under test
		}
		clientRTs += c.RoundTrips()
	}
	if got := sumNICRTs(f); got != clientRTs {
		t.Fatalf("NIC rts %d != client rts %d under faults", got, clientRTs)
	}
	if clientRTs == 0 {
		t.Fatal("workload produced no round trips")
	}

	// Killing a node mid-stream keeps the invariant: discovery and
	// breaker rejects charge neither side.
	f.KillNode(b)
	c := f.NewClient()
	for i := 0; i < 100; i++ {
		_ = c.Batch(writeOps(nodes[i%3], uint64(8192+i), 1))
	}
	clientRTs += c.RoundTrips()
	if got := sumNICRTs(f); got != clientRTs {
		t.Fatalf("NIC rts %d != client rts %d after kill", got, clientRTs)
	}

	// ResetTimelines preserves the cumulative attribution counters.
	before := sumNICRTs(f)
	f.ResetTimelines()
	if got := sumNICRTs(f); got != before {
		t.Fatalf("ResetTimelines dropped rts: %d -> %d", before, got)
	}
}
