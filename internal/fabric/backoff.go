package fabric

import "runtime"

// BackoffPolicy is the shared capped-exponential-backoff-with-jitter used
// by every retry loop in the client stack (lock acquisition, torn-leaf
// re-reads, operation-level restarts). Waits are virtual — they advance
// the client's clock — and jitter comes from the client's deterministic
// stream, so a retry schedule is reproducible for a given fault-plan seed.
type BackoffPolicy struct {
	// BasePs is the first wait. Defaults to 250 ns.
	BasePs int64
	// CapPs bounds a single wait. Defaults to 16 µs (8 RTTs).
	CapPs int64
	// Budget is the number of waits before the loop gives up and the
	// operation fails with a retries-exhausted error. Defaults to 256.
	Budget int
}

// Default backoff parameters (virtual time).
const (
	DefaultBackoffBasePs = 250_000
	DefaultBackoffCapPs  = 16_000_000
	DefaultBackoffBudget = 256
)

func (p BackoffPolicy) basePs() int64 {
	if p.BasePs <= 0 {
		return DefaultBackoffBasePs
	}
	return p.BasePs
}

func (p BackoffPolicy) capPs() int64 {
	if p.CapPs <= 0 {
		return DefaultBackoffCapPs
	}
	return p.CapPs
}

func (p BackoffPolicy) budget() int {
	if p.Budget <= 0 {
		return DefaultBackoffBudget
	}
	return p.Budget
}

// Start begins one retry sequence for the given client.
func (p BackoffPolicy) Start(c *Client) *Backoff {
	return &Backoff{pol: p, c: c}
}

// Backoff is the state of one retry sequence.
type Backoff struct {
	pol      BackoffPolicy
	c        *Client
	attempts int
	waitedPs int64
}

// Attempts returns how many waits have been taken.
func (b *Backoff) Attempts() int { return b.attempts }

// WaitedPs returns the cumulative virtual time spent waiting in this
// sequence; lock-steal logic compares it against the lease duration.
func (b *Backoff) WaitedPs() int64 { return b.waitedPs }

// ResetWatch restarts the cumulative-wait measurement (used when a watched
// lock changed hands, so the lease observation starts over).
func (b *Backoff) ResetWatch() { b.waitedPs = 0 }

// Wait blocks (virtually) before the next retry: an exponentially growing,
// capped, jittered pause on the client's clock. It returns false once the
// retry budget is exhausted, in which case the caller must give up.
func (b *Backoff) Wait() bool {
	if b.attempts >= b.pol.budget() {
		return false
	}
	step := b.pol.basePs()
	cap := b.pol.capPs()
	if shift := b.attempts; shift < 20 {
		step <<= uint(shift)
	} else {
		step = cap
	}
	if step > cap || step <= 0 {
		step = cap
	}
	// Full jitter over [step/2, step]: desynchronizes competing clients
	// while keeping each client's schedule deterministic.
	wait := step/2 + int64(b.c.Rand64()%uint64(step/2+1))
	b.c.AdvanceClock(wait)
	b.waitedPs += wait
	b.attempts++
	runtime.Gosched()
	return true
}
