package sphinx

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"sphinx/internal/fabric"
)

// TestRegistryScrapeRaceClean hammers the session registry — snapshots,
// diffs, Prometheus and JSON rendering — from a scraper goroutine while
// the session drives a depth-8 pipelined MultiGet storm. Run under -race
// this proves a live /metrics endpoint can serve mid-run: every counter
// the registry closures touch (fabric, core, engine, hash-table views,
// filter cache, INHT usage scan, tail sampler) must be scrape-safe.
func TestRegistryScrapeRaceClean(t *testing.T) {
	cluster, err := NewCluster(Config{Timing: TimingInstant})
	if err != nil {
		t.Fatal(err)
	}
	s := cluster.NewComputeNode().NewSession()
	keys := make([][]byte, 400)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("scrape-%04d", i))
		if err := s.Put(keys[i], []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	reg := s.Registry() // build the closures before the scraper starts
	base := reg.Snapshot()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := reg.Snapshot()
			_ = snap.Sub(base).WritePrometheus(io.Discard, "sphinx")
			_ = snap.WriteJSON(io.Discard)
			s.Tail().Samples()
		}
	}()
	for round := 0; round < 30; round++ {
		for _, r := range s.MultiGet(keys, 8) {
			if r.Err != nil {
				t.Errorf("MultiGet: %v", r.Err)
			}
		}
	}
	close(stop)
	wg.Wait()

	var sb strings.Builder
	if err := reg.Snapshot().WritePrometheus(&sb, "sphinx"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"sphinx_sfc_load", "sphinx_inht_load_factor",
		"sphinx_inht_lookups", "sphinx_sfc_hit_depth", "sphinx_core_filter_hits"} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %s", want)
		}
	}
}

// randKeys returns n deterministic pseudo-random keys of the given
// length over 'A'..'Z' — disjoint from the lowercase present keys, and
// with (almost) no shared prefixes between keys. Distinctness matters
// for false-positive measurement: locate unlearns a prefix from the
// filter after its first false positive, so a prefix shared by many
// probe keys can contribute at most one FP no matter how often it is
// probed. Distinct prefixes keep the measured per-probe rate comparable
// to the analytic per-probe bound.
func randKeys(n, length int, seed uint64) [][]byte {
	rng := seed
	keys := make([][]byte, n)
	for i := range keys {
		k := make([]byte, length)
		for j := range k {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			k[j] = 'A' + byte(rng%26)
		}
		keys[i] = k
	}
	return keys
}

// TestMeasuredFPRateGauge loads the index, tops the CN filter up to a
// high load with synthetic entries, probes thousands of absent keys, and
// checks that the measured false-positive rate (core false positives per
// filter probe) lands within tolerance of the analytic cuckoo bound the
// registry exports next to it.
func TestMeasuredFPRateGauge(t *testing.T) {
	// A small filter so the probe phase runs it at meaningful load.
	cluster, err := NewCluster(Config{Timing: TimingInstant, CacheBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	cn := cluster.NewComputeNode()
	s := cn.NewSession()
	for i := 0; i < 2000; i++ {
		if err := s.Put([]byte(fmt.Sprintf("get%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Top the filter up with synthetic prefixes. They are never probed
	// directly, but their fingerprints collide with absent-probe hashes
	// exactly like real entries, raising the load — and with it both the
	// analytic bound and the measured rate — into testable territory.
	rng := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 20000 && cn.filter.Load() < 0.85; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		cn.filter.Insert(rng)
	}
	load := cn.filter.Load()
	if load < 0.5 {
		t.Fatalf("could not reach meaningful filter load: %.2f", load)
	}

	fp0 := s.sphinx.Stats().FalsePositives
	fst0 := cn.filter.FilterStats()
	const absents = 3000
	for i, key := range randKeys(absents, 12, 0x5eed) {
		if _, ok, err := s.Get(key); err != nil || ok {
			t.Fatalf("absent get %d: ok=%v err=%v", i, ok, err)
		}
	}
	fp := s.sphinx.Stats().FalsePositives - fp0
	fst := cn.filter.FilterStats()
	probes := fst.Hits + fst.Misses - fst0.Hits - fst0.Misses
	if probes < absents {
		t.Fatalf("probe accounting off: %d probes for %d absent gets", probes, absents)
	}
	measured := float64(fp) / float64(probes)
	analytic := cn.filter.AnalyticFPBound()
	t.Logf("load %.2f, probes %d, false positives %d: measured %.5f vs analytic %.5f",
		cn.filter.Load(), probes, fp, measured, analytic)
	if measured < 0.3*analytic || measured > 2.0*analytic {
		t.Fatalf("measured FP rate %.5f outside [0.3, 2.0]× analytic bound %.5f", measured, analytic)
	}

	// The exported gauge is the cumulative rate over the session's whole
	// life (load phase included), so it must be positive and cannot
	// exceed the probe-phase rate by more than rounding.
	snap := s.Registry().Snapshot()
	gauge, ok := snap.Gauges["sfc_false_positive_rate"]
	if !ok {
		t.Fatalf("sfc_false_positive_rate gauge missing (gauges: %v)", snap.Gauges)
	}
	if gauge <= 0 || gauge > 1.2*measured {
		t.Fatalf("gauge %.5f inconsistent with measured probe-phase rate %.5f", gauge, measured)
	}
	if bound, ok := snap.Gauges["sfc_analytic_fp_bound"]; !ok || bound <= 0 {
		t.Fatalf("sfc_analytic_fp_bound gauge missing or zero (gauges: %v)", snap.Gauges)
	}
}

// TestFPHashReadReconciliation pins the telemetry invariant documented in
// DESIGN.md §5.9: in a read-only steady state every hash-read-stage round
// trip is a hash-table lookup, a stale-directory retry, or half a
// directory refresh — and every lookup is either a filter hit or a false
// positive. So the SFC's false positives are exactly the extra hash-read
// round trips beyond the filter hits.
func TestFPHashReadReconciliation(t *testing.T) {
	cluster, err := NewCluster(Config{Timing: TimingInstant, CacheBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	cn := cluster.NewComputeNode()
	s := cn.NewSession()
	for i := 0; i < 1500; i++ {
		if err := s.Put([]byte(fmt.Sprintf("rec%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	st0 := s.sphinx.Stats()
	hs0 := s.sphinx.HashStats()
	rt0 := s.Metrics().StageRT(fabric.StageHashRead).Sum
	absent := randKeys(800, 8, 0xf00d) // distinct prefixes: see randKeys
	for i := 0; i < 4000; i++ {
		key := []byte(fmt.Sprintf("rec%05d", i%1500))
		if i%5 == 4 {
			key = absent[i/5] // absent: exercises false positives
		}
		if _, _, err := s.Get(key); err != nil {
			t.Fatal(err)
		}
	}
	st := s.sphinx.Stats()
	hs := s.sphinx.HashStats()
	rt := s.Metrics().StageRT(fabric.StageHashRead).Sum

	if st.Restarts != st0.Restarts || st.StaleEntries != st0.StaleEntries {
		t.Fatalf("read-only phase was not steady: restarts %d→%d, stale %d→%d",
			st0.Restarts, st.Restarts, st0.StaleEntries, st.StaleEntries)
	}
	lookups := hs.Lookups - hs0.Lookups
	claims := (st.FilterHits - st0.FilterHits) + (st.FalsePositives - st0.FalsePositives)
	if lookups != claims {
		t.Fatalf("hash lookups %d != filter hits + false positives %d", lookups, claims)
	}
	wantRT := lookups + (hs.RetryReads - hs0.RetryReads) + 2*(hs.Refreshes-hs0.Refreshes)
	if got := rt - rt0; got != wantRT {
		t.Fatalf("hash-read stage RTs %d != lookups + retries + 2×refreshes %d", got, wantRT)
	}
	if fp := st.FalsePositives - st0.FalsePositives; fp == 0 {
		t.Fatal("phase produced no false positives; reconciliation untested")
	}
}

// TestTailSamplerCapturesSlowOps runs a timed workload and checks that
// the always-on sampler retains annotated slow-op timelines.
func TestTailSamplerCapturesSlowOps(t *testing.T) {
	cluster, err := NewCluster(Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := cluster.NewComputeNode().NewSession()
	for i := 0; i < 300; i++ {
		if err := s.Put([]byte(fmt.Sprintf("tail-%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1200; i++ {
		if _, _, err := s.Get([]byte(fmt.Sprintf("tail-%04d", i%300))); err != nil {
			t.Fatal(err)
		}
	}
	offered, captured := s.Tail().Stats()
	if offered == 0 || captured == 0 {
		t.Fatalf("tail sampler captured nothing (offered %d, captured %d)", offered, captured)
	}
	samples := s.Tail().Samples()
	if len(samples) == 0 {
		t.Fatal("no samples retained")
	}
	for _, sm := range samples[:1] {
		if sm.Cause == "" {
			t.Error("sample has no cause annotation")
		}
		if sm.Trace == nil || len(sm.Trace.Events) == 0 {
			t.Error("sample trace has no recorded events")
		}
		if sm.LatencyPs < sm.ThresholdPs {
			t.Errorf("capture below threshold: %d < %d", sm.LatencyPs, sm.ThresholdPs)
		}
	}
	// TimingInstant sessions must never capture: zero-latency timelines
	// carry no tail signal.
	instant, err := NewCluster(Config{Timing: TimingInstant})
	if err != nil {
		t.Fatal(err)
	}
	si := instant.NewComputeNode().NewSession()
	_ = si.Put([]byte("k"), []byte("v"))
	for i := 0; i < 500; i++ {
		_, _, _ = si.Get([]byte("k"))
	}
	if _, cap0 := si.Tail().Stats(); cap0 != 0 {
		t.Fatalf("instant-timing session captured %d tail samples, want 0", cap0)
	}
}
