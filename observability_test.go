package sphinx

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s\n%s", url, resp.Status, body)
	}
	return string(body)
}

// TestClusterObservabilityPlane drives the cluster plane with explicit
// virtual-clock samples: per-MN families appear for every node, verb
// shares sum to one, a configured SLO reports burn 0 under in-objective
// load, and killing a node fires the mn-dead alert which resolves is
// never expected (dead stays dead) while the health gauge reflects it.
func TestClusterObservabilityPlane(t *testing.T) {
	cl, err := NewCluster(Config{
		MemoryNodes:           3,
		ObservabilityWindowPs: 1_000_000, // 1 µs virtual windows
		SLOs: []SLO{{Name: "get-p99", Op: OpGet, Quantile: 0.99, LatencyPs: 1 << 40}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := cl.NewComputeNode().NewSession()

	// Feed the SLO engine from this session's histograms, as
	// ServeObservability would.
	cl.sloSource.Store(s.metrics)

	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("obs-key-%04d", i))
		if err := s.Put(key, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("obs-key-%04d", i))
		if _, ok, err := s.Get(key); err != nil || !ok {
			t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
		}
	}
	cl.SampleObservability(s.fc.Clock())

	snap := cl.Observability()
	if len(snap.Nodes) != 3 {
		t.Fatalf("plane sees %d nodes, want 3", len(snap.Nodes))
	}
	var share float64
	var rts, verbs uint64
	for _, n := range snap.Nodes {
		if !n.Member || n.Health != "closed" {
			t.Fatalf("node %d: member=%v health=%q", n.Node, n.Member, n.Health)
		}
		share += n.VerbShare
		rts += n.WindowRTs
		verbs += n.WindowVerbs
		if n.ArenaOccupancy <= 0 || n.ArenaOccupancy >= 1 {
			t.Fatalf("node %d arena occupancy = %v", n.Node, n.ArenaOccupancy)
		}
		if len(n.BusyWindows) == 0 {
			t.Fatalf("node %d has no busy-ratio windows", n.Node)
		}
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("verb shares sum to %v, want 1", share)
	}
	// Per-MN attributed round trips reconcile exactly with the client.
	if clientRTs := s.fc.RoundTrips(); rts != clientRTs {
		t.Fatalf("sum of per-MN windowed RTs %d != client RoundTrips %d", rts, clientRTs)
	}
	if clientVerbs := s.fc.Stats().Verbs; verbs != clientVerbs {
		t.Fatalf("sum of per-MN windowed verbs %d != client verbs %d", verbs, clientVerbs)
	}

	// The generous SLO burns nothing; attainment is perfect.
	if len(snap.SLOs) != 1 {
		t.Fatalf("SLO statuses = %d, want 1", len(snap.SLOs))
	}
	slo := snap.SLOs[0]
	if slo.FastBurn != 0 || slo.SlowBurn != 0 || slo.Attainment != 1 {
		t.Fatalf("steady SLO status = %+v", slo)
	}
	if slo.WindowOps == 0 {
		t.Fatal("SLO engine saw no ops")
	}

	// The session registry exports the plane families.
	reg := s.Registry().Snapshot()
	for _, k := range []string{
		`mn_busy_ratio{node="0"}`, `mn_busy_ratio{node="2"}`,
		`slo_fast_burn{slo="get-p99"}`, `alert_firing`,
	} {
		if _, ok := reg.Gauges[k]; !ok {
			t.Fatalf("registry missing gauge %q", k)
		}
	}
	if got := reg.Counters[`mn_round_trips_total{node="0"}`] +
		reg.Counters[`mn_round_trips_total{node="1"}`] +
		reg.Counters[`mn_round_trips_total{node="2"}`]; got != s.fc.RoundTrips() {
		t.Fatalf("registry mn_round_trips_total sum %d != client %d", got, s.fc.RoundTrips())
	}

	// Kill a node: the health signal flips and the mn-dead default rule
	// fires on the next sample.
	if err := cl.KillMemoryNode(2); err != nil {
		t.Fatal(err)
	}
	// Let the breaker learn the death: sweep until some batch touches
	// the killed node (errors expected).
	for i := 0; i < 200; i++ {
		_, _, _ = s.Get([]byte(fmt.Sprintf("obs-key-%04d", i)))
	}
	for i := 0; i < 3; i++ {
		cl.SampleObservability(s.fc.Clock() + int64(i+1)*1_000_000)
	}
	var deadFiring bool
	for _, a := range cl.Alerts() {
		if a.Rule == "mn-dead" && a.State.String() == "firing" {
			deadFiring = true
			if a.Fired == 0 {
				t.Fatalf("firing alert with zero Fired counter: %+v", a)
			}
		}
	}
	if !deadFiring {
		t.Fatalf("mn-dead alert not firing after kill; alerts = %+v", cl.Alerts())
	}
}

// TestServeObservabilityPlaneEndpoints checks /mn, /slo and /alerts are
// served alongside the existing endpoints.
func TestServeObservabilityPlaneEndpoints(t *testing.T) {
	cl, err := NewCluster(Config{
		Timing: TimingInstant,
		SLOs:   []SLO{{Name: "get-p99", Op: OpGet, Quantile: 0.99, LatencyPs: 1 << 40}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := cl.NewComputeNode().NewSession()
	if err := s.Put([]byte("serve-key"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	srv, addr, err := s.ServeObservability("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl.SampleObservability(1_000_000)

	for path, want := range map[string]string{
		"/mn":     `"nodes"`,
		"/slo":    `"get-p99"`,
		"/alerts": `[`,
	} {
		body := httpGet(t, "http://"+addr+path)
		if !strings.Contains(body, want) {
			t.Fatalf("%s missing %q:\n%s", path, want, body)
		}
	}
	body := httpGet(t, "http://"+addr+"/metrics")
	for _, want := range []string{"sphinx_mn_busy_ratio{node=", "sphinx_slo_attainment{slo="} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}
