package sphinx

import (
	"strings"
	"testing"

	"sphinx/internal/fabric"
)

// TestTraceColdGet pins the paper's §III-B claim in trace form: a Get the
// leaf-address cache has no opinion on costs exactly three round trips —
// hash-read, node-read, leaf-read — independent of tree depth, and the
// session's histogram totals reconcile with the fabric's own counters.
func TestTraceColdGet(t *testing.T) {
	cluster, err := NewCluster(Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := cluster.NewComputeNode().NewSession()

	// Two keys diverging at depth 3 force an inner node at "LYR", so the
	// hash path has a real hash-table target below the root.
	if err := s.Put([]byte("LYRICS"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("LYRBIC"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// Warm the filter cache on the sibling key: the "LYR" prefix becomes
	// known CN-side, but the leaf-address cache learns nothing about
	// LYRBIC — so the traced Get below is the pure 3-RT hash path.
	if _, ok, err := s.Get([]byte("LYRICS")); err != nil || !ok {
		t.Fatalf("warm-up Get = ok %v, err %v", ok, err)
	}

	tr, err := s.Trace("get LYRBIC", func() error {
		v, ok, err := s.Get([]byte("LYRBIC"))
		if err == nil && (!ok || string(v) != "v2") {
			t.Errorf("traced Get = %q, ok %v", v, ok)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	if got := tr.RoundTrips(); got != 3 {
		t.Fatalf("cold Get took %d round trips, want 3:\n%s", got, tr.Format())
	}
	var stages []string
	for _, e := range tr.Events {
		if e.Batch {
			stages = append(stages, e.Stage.String())
		}
	}
	want := []string{
		fabric.StageHashRead.String(),
		fabric.StageNodeRead.String(),
		fabric.StageLeafRead.String(),
	}
	if len(stages) != len(want) {
		t.Fatalf("batch stages = %v, want %v:\n%s", stages, want, tr.Format())
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("batch stages = %v, want %v:\n%s", stages, want, tr.Format())
		}
	}
	out := tr.Format()
	for _, needle := range []string{"3 round trips", "hash-read", "node-read", "leaf-read"} {
		if !strings.Contains(out, needle) {
			t.Errorf("trace output missing %q:\n%s", needle, out)
		}
	}

	// The tee'd recorder must not have perturbed the session accounting: a
	// sequential session reconciles at both the stage and the op level.
	st := s.Stats()
	if got := s.Metrics().StageRTTotal(); got != st.RoundTrips {
		t.Errorf("stage RT total %d != fabric round trips %d", got, st.RoundTrips)
	}
	if got := s.Metrics().OpRTTotal(); got != st.RoundTrips {
		t.Errorf("op RT total %d != fabric round trips %d", got, st.RoundTrips)
	}

	// The registry sees the same truth through its export path.
	snap := s.Registry().Snapshot()
	if snap.Counters["fabric_round_trips"] != st.RoundTrips {
		t.Errorf("registry fabric_round_trips = %d, want %d",
			snap.Counters["fabric_round_trips"], st.RoundTrips)
	}
	var prom strings.Builder
	if err := snap.WritePrometheus(&prom, "sphinx"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), `sphinx_session_stage_round_trips_count{stage="hash-read"}`) {
		t.Errorf("prometheus export missing hash-read stage histogram:\n%s", prom.String())
	}
}

// TestTraceWarmGet pins the speculative fast path in trace form: a Get
// whose key the leaf-address cache knows costs exactly ONE round trip —
// a leaf-spec read verified in place — and the trace carries the hit
// annotation. Accounting still reconciles with the fabric's counters.
func TestTraceWarmGet(t *testing.T) {
	cluster, err := NewCluster(Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := cluster.NewComputeNode().NewSession()

	if err := s.Put([]byte("LYRICS"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("LYRBIC"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// The warm-up Get traverses the tree and learns LYRICS's leaf address.
	if _, ok, err := s.Get([]byte("LYRICS")); err != nil || !ok {
		t.Fatalf("warm-up Get = ok %v, err %v", ok, err)
	}

	tr, err := s.Trace("get LYRICS", func() error {
		v, ok, err := s.Get([]byte("LYRICS"))
		if err == nil && (!ok || string(v) != "v1") {
			t.Errorf("traced Get = %q, ok %v", v, ok)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	if got := tr.RoundTrips(); got != 1 {
		t.Fatalf("warm Get took %d round trips, want 1:\n%s", got, tr.Format())
	}
	var stages []string
	for _, e := range tr.Events {
		if e.Batch {
			stages = append(stages, e.Stage.String())
		}
	}
	if len(stages) != 1 || stages[0] != fabric.StageLeafSpec.String() {
		t.Fatalf("batch stages = %v, want [leaf-spec]:\n%s", stages, tr.Format())
	}
	out := tr.Format()
	for _, needle := range []string{"1 round trips", "leaf-spec", "lac hit"} {
		if !strings.Contains(out, needle) {
			t.Errorf("trace output missing %q:\n%s", needle, out)
		}
	}

	// Speculative counters surfaced at the session level.
	sc, ok := s.SphinxStats()
	if !ok || sc.SpecHits != 1 {
		t.Errorf("SphinxStats SpecHits = %d (ok %v), want 1", sc.SpecHits, ok)
	}

	// Accounting reconciles: the speculative round trip is attributed to
	// the leaf-spec stage and counted exactly once.
	st := s.Stats()
	if got := s.Metrics().StageRTTotal(); got != st.RoundTrips {
		t.Errorf("stage RT total %d != fabric round trips %d", got, st.RoundTrips)
	}
	if got := s.Metrics().OpRTTotal(); got != st.RoundTrips {
		t.Errorf("op RT total %d != fabric round trips %d", got, st.RoundTrips)
	}
	var prom strings.Builder
	if err := s.Registry().Snapshot().WritePrometheus(&prom, "sphinx"); err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{
		`sphinx_session_stage_round_trips_count{stage="leaf-spec"}`,
		"sphinx_core_spec_hits 1",
		"sphinx_lac_learns",
	} {
		if !strings.Contains(prom.String(), needle) {
			t.Errorf("prometheus export missing %q", needle)
		}
	}
}
