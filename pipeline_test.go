package sphinx_test

import (
	"fmt"
	"testing"

	"sphinx"
)

func pipelineCluster(t *testing.T, sys sphinx.System, n int) (*sphinx.Cluster, *sphinx.Session, [][]byte) {
	t.Helper()
	cluster, err := sphinx.NewCluster(sphinx.Config{System: sys})
	if err != nil {
		t.Fatal(err)
	}
	s := cluster.NewComputeNode().NewSession()
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("plk-%05d", i))
		if err := s.Put(keys[i], []byte(fmt.Sprintf("plv-%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return cluster, s, keys
}

func TestSessionMultiGet(t *testing.T) {
	_, s, keys := pipelineCluster(t, sphinx.SystemSphinx, 300)
	res := s.MultiGet(keys, 8)
	if len(res) != len(keys) {
		t.Fatalf("got %d results for %d keys", len(res), len(keys))
	}
	for i, r := range res {
		if r.Err != nil || !r.Found || string(r.Value) != fmt.Sprintf("plv-%05d", i) {
			t.Errorf("key %d: found=%v val=%q err=%v", i, r.Found, r.Value, r.Err)
		}
	}
	if r := s.MultiGet([][]byte{[]byte("plk-absent")}, 4); r[0].Found || r[0].Err != nil {
		t.Errorf("absent key: found=%v err=%v", r[0].Found, r[0].Err)
	}
}

func TestSessionMultiPutThenPipeline(t *testing.T) {
	_, s, _ := pipelineCluster(t, sphinx.SystemSphinx, 10)
	pairs := make([]sphinx.KV, 64)
	for i := range pairs {
		pairs[i] = sphinx.KV{
			Key:   []byte(fmt.Sprintf("mp-%04d", i)),
			Value: []byte(fmt.Sprintf("mv-%04d", i)),
		}
	}
	res := s.MultiPut(pairs, 8)
	for i, r := range res {
		if r.Err != nil || r.Found {
			t.Fatalf("put %d: existed=%v err=%v", i, r.Found, r.Err)
		}
	}
	// Overwrites report Found.
	res = s.MultiPut(pairs[:8], 4)
	for i, r := range res {
		if r.Err != nil || !r.Found {
			t.Errorf("overwrite %d: existed=%v err=%v", i, r.Found, r.Err)
		}
	}

	// Mixed batch through the Pipeline facade, including a scan.
	p := s.Pipeline(6)
	get := p.Get(pairs[3].Key)
	del := p.Delete(pairs[5].Key)
	upd := p.Update(pairs[7].Key, []byte("updated"))
	scan := p.Scan([]byte("mp-"), nil, 16)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if !get.Found || string(get.Value) != "mv-0003" {
		t.Errorf("pipelined get = %q found=%v", get.Value, get.Found)
	}
	if !del.Found || !upd.Found {
		t.Errorf("delete found=%v update found=%v", del.Found, upd.Found)
	}
	if len(scan.KVs) != 16 {
		t.Errorf("scan returned %d pairs, want 16", len(scan.KVs))
	}
	if get.LatencyPs <= 0 {
		t.Errorf("latency not measured: %d", get.LatencyPs)
	}
	// The deleted key is gone, the updated one changed.
	if _, ok, _ := s.Get(pairs[5].Key); ok {
		t.Error("deleted key still present")
	}
	if v, ok, _ := s.Get(pairs[7].Key); !ok || string(v) != "updated" {
		t.Errorf("updated key = %q ok=%v", v, ok)
	}
}

// TestMultiGetCoalescesRoundTrips is the issue's acceptance property at
// the public API: a pipelined MultiGet of N warm-filter keys uses
// strictly fewer doorbell round trips than N sequential Gets, and at
// depth 1 degrades to exactly the sequential count.
func TestMultiGetCoalescesRoundTrips(t *testing.T) {
	_, s, keys := pipelineCluster(t, sphinx.SystemSphinx, 400)
	const n = 200

	// Warm everything (filter, directory caches, pipeline lanes).
	for _, k := range keys {
		if _, ok, err := s.Get(k); err != nil || !ok {
			t.Fatal("warmup")
		}
	}
	s.MultiGet(keys, 8)

	seqBefore := s.Stats()
	for _, k := range keys[:n] {
		if _, ok, err := s.Get(k); err != nil || !ok {
			t.Fatal(err)
		}
	}
	seqRTs := s.Stats().RoundTrips - seqBefore.RoundTrips

	pipeBefore := s.Stats()
	res := s.MultiGet(keys[:n], 8)
	for i, r := range res {
		if r.Err != nil || !r.Found {
			t.Fatalf("pipelined get %d failed: %v", i, r.Err)
		}
	}
	pipeRTs := s.Stats().RoundTrips - pipeBefore.RoundTrips

	if pipeRTs >= seqRTs {
		t.Errorf("MultiGet depth 8 spent %d RTs, sequential %d — no coalescing", pipeRTs, seqRTs)
	}

	d1Before := s.Stats()
	res = s.MultiGet(keys[:n], 1)
	for i, r := range res {
		if r.Err != nil || !r.Found {
			t.Fatalf("depth-1 get %d failed: %v", i, r.Err)
		}
	}
	d1RTs := s.Stats().RoundTrips - d1Before.RoundTrips
	if d1RTs != seqRTs {
		t.Errorf("MultiGet depth 1 spent %d RTs, sequential %d — should match", d1RTs, seqRTs)
	}
}

// TestPipelineFallbackSequential: baseline systems execute pipelines
// sequentially but return the same results.
func TestPipelineFallbackSequential(t *testing.T) {
	for _, sys := range []sphinx.System{sphinx.SystemSMART, sphinx.SystemART} {
		t.Run(sys.String(), func(t *testing.T) {
			_, s, keys := pipelineCluster(t, sys, 100)
			res := s.MultiGet(keys, 8)
			for i, r := range res {
				if r.Err != nil || !r.Found || string(r.Value) != fmt.Sprintf("plv-%05d", i) {
					t.Errorf("key %d: found=%v val=%q err=%v", i, r.Found, r.Value, r.Err)
				}
			}
			pairs := []sphinx.KV{{Key: []byte("fb-k"), Value: []byte("fb-v")}}
			if pr := s.MultiPut(pairs, 8); pr[0].Err != nil {
				t.Fatal(pr[0].Err)
			}
			if v, ok, _ := s.Get([]byte("fb-k")); !ok || string(v) != "fb-v" {
				t.Errorf("fallback put lost: %q ok=%v", v, ok)
			}
		})
	}
}
