package sphinx

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestFailoverAndRepairPublicAPI exercises the fault-tolerance layer
// through the public surface: replicated cluster, kill one memory node,
// keep serving every acknowledged write, repair back to full replication.
func TestFailoverAndRepairPublicAPI(t *testing.T) {
	cluster, err := NewCluster(Config{Timing: TimingInstant, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := cluster.NewComputeNode().NewSession()
	keys := make([][]byte, 300)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("ft-key-%04d", i))
		if err := s.Put(keys[i], []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cluster.KillMemoryNode(0); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		v, ok, err := s.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("v-%d", i) {
			t.Fatalf("get %q after kill: ok=%v v=%q err=%v", k, ok, v, err)
		}
	}
	if h, err := cluster.NodeHealth(0); err != nil || h != "dead" {
		t.Fatalf("node 0 health = %q err=%v, want dead", h, err)
	}
	var rep RepairReport
	for sweep := 0; sweep < 6; sweep++ {
		if rep, err = s.RepairSweep(); err != nil {
			t.Fatal(err)
		}
		if rep.Deficits == 0 {
			break
		}
	}
	if rep.Deficits != 0 {
		t.Fatalf("repair did not converge: %+v", rep)
	}
	if g := cluster.UnderReplicated(); g != 0 {
		t.Fatalf("under-replicated gauge = %d after convergence", g)
	}
}

// TestFailoverMetricsScrapeRaceClean runs a live /metrics endpoint while a
// session serves ops, a memory node is killed mid-run, and repair sweeps
// run concurrently. Run under -race this proves the fault-tolerance
// telemetry — per-node health gauges, failover counters, the
// under-replicated gauge — is scrape-safe against kills and repair.
func TestFailoverMetricsScrapeRaceClean(t *testing.T) {
	cluster, err := NewCluster(Config{Timing: TimingInstant, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := cluster.NewComputeNode().NewSession()
	keys := make([][]byte, 240)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("scrape-ft-%04d", i))
		if err := s.Put(keys[i], []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	srv, addr, err := s.ServeObservability("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get("http://" + addr + "/metrics")
			if err != nil {
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	wg.Add(1)
	go func() { // repairer: its own session, concurrent with serving
		defer wg.Done()
		r := cluster.NewComputeNode().NewSession()
		for sweep := 0; sweep < 4; sweep++ {
			if _, err := r.RepairSweep(); err != nil {
				t.Errorf("repair sweep %d: %v", sweep, err)
				return
			}
		}
	}()
	for round := 0; round < 8; round++ {
		if round == 3 {
			if err := cluster.KillMemoryNode(1); err != nil {
				t.Fatal(err)
			}
		}
		for i, k := range keys {
			if round%2 == 0 {
				if _, _, err := s.Get(k); err != nil {
					t.Fatalf("round %d get %q: %v", round, k, err)
				}
			} else if err := s.Put(k, []byte(fmt.Sprintf("r%d-%d", round, i))); err != nil {
				t.Fatalf("round %d put %q: %v", round, k, err)
			}
		}
	}
	close(stop)
	wg.Wait()

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	for _, want := range []string{
		`ft_node_health{node="`,
		"ft_under_replicated",
		"ft_repair_sweeps",
		"core_failovers",
		"fabric_health_rejects",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	// The killed node's health gauge must read dead (2) on the live
	// endpoint.
	dead := false
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, `ft_node_health{node="`) && strings.HasSuffix(strings.TrimSpace(line), " 2") {
			dead = true
		}
	}
	if !dead {
		t.Errorf("no ft_node_health gauge reads dead after the kill")
	}
}
