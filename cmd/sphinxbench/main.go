// Command sphinxbench regenerates the paper's evaluation figures on the
// simulated disaggregated-memory cluster.
//
// Usage:
//
//	sphinxbench [flags] fig4|fig5|fig6|ablation|all
//
// Each experiment prints an aligned table; see EXPERIMENTS.md for the
// mapping to the paper's figures and the expected shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"time"

	"sphinx/internal/bench"
	"sphinx/internal/dataset"
	"sphinx/internal/fabric"
	"sphinx/internal/obs"
)

func main() {
	keys := flag.Int("keys", 100_000, "loaded keys per dataset (paper: 60M)")
	workers := flag.Int("workers", 24, "worker count for fig4/fig6/ablation")
	ops := flag.Int("ops", 2000, "operations per worker per workload run")
	seed := flag.Int64("seed", 1, "dataset and workload seed")
	mns := flag.Int("mns", 3, "memory nodes")
	cns := flag.Int("cns", 3, "compute nodes")
	only := flag.String("dataset", "", "restrict to one dataset: u64 or email")
	theta := flag.Float64("theta", 0.99, "zipfian request skew (paper: 0.99)")
	stats := flag.Bool("stats", false, "print Sphinx routing diagnostics per run")
	faults := flag.Int("faults", 0, "inject fabric faults at this per-64k rate per batch (transient + timeout); 0 disables")
	csvPath := flag.String("csv", "", "also write results as CSV to this file")
	depth := flag.Int("depth", 1, "per-worker issue depth: in-flight ops per worker with coalesced doorbell batches (Sphinx-family only; pipeline sweeps its own)")
	jsonDir := flag.String("json", "", "also write BENCH_<experiment>.json reports into this directory")
	metrics := flag.Bool("metrics", false, "record per-op and per-stage histograms and emit a metrics section per result (fails the run if round-trip totals do not reconcile)")
	serveAddr := flag.String("serve", "", "serve live observability HTTP on this address while experiments run (host:0 for an ephemeral port): /metrics, /snapshot, /traces, /debug/pprof")
	serveLinger := flag.Duration("serve-linger", 0, "with -serve, keep serving this long after the experiments finish (lets scrapers read final totals)")
	scaleWorkers := flag.String("scale-workers", "", "comma-separated worker counts for the scaling experiment (default 1,2,4,8,16)")
	warm := flag.Bool("warm", false, "split every workload run into a warmup and a steady-state pass, reporting both (fastpath implies it)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] fig4|fig5|fig6|ablation|scaling|treedepth|valsweep|pipeline|fastpath|failover|elastic|skew|all\n", os.Args[0])
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	// -theta 0 means uniform when the user says so explicitly; the config
	// zero value means "default skew", so it must be mapped to the sentinel
	// here, where explicitly-set flags are distinguishable.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "theta" && *theta == 0 {
			*theta = bench.ThetaUniform
		}
	})

	base := bench.Config{
		Keys:         *keys,
		Workers:      *workers,
		OpsPerWorker: *ops,
		Seed:         *seed,
		MNs:          *mns,
		CNs:          *cns,
		Theta:        *theta,
		Depth:        *depth,
		Metrics:      *metrics,
		Warm:         *warm,
	}
	var live *bench.Live
	if *serveAddr != "" {
		live = bench.NewLive()
		base.Live = live
	}
	if *faults > 0 {
		base.Faults = &fabric.FaultPlan{
			Seed:            uint64(*seed),
			TransientPer64k: uint32(*faults),
			TimeoutPer64k:   uint32(*faults) / 2,
		}
	}
	var cfgs []bench.Config
	switch *only {
	case "":
		cfgs = bench.DatasetConfigs(base)
	case "u64":
		base.Dataset = dataset.U64
		cfgs = []bench.Config{base}
	case "email":
		base.Dataset = dataset.Email
		cfgs = []bench.Config{base}
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *only)
		os.Exit(2)
	}

	if live != nil {
		// The registry is assembled here, before any experiment goroutine
		// exists; scrapes then race only against atomic counter sources.
		h := obs.NewHandler(obs.ServeOptions{Registry: live.Registry(), Tail: live.Tail, Plane: live.Plane})
		_, bound, err := obs.Serve(*serveAddr, h)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sphinxbench:", err)
			os.Exit(1)
		}
		// Sample the plane on the wall clock for as long as we serve —
		// /mn, /slo and /alerts then move while experiments run and keep
		// settling through -serve-linger after the load stops.
		live.Plane.EnsureWallTicker(250 * time.Millisecond)
		fmt.Fprintf(os.Stderr, "serving observability on http://%s/\n", bound)
	}

	var collected []bench.Result
	reports := map[string]*bench.JSONReport{}
	report := func(name string) *bench.JSONReport {
		if reports[name] == nil {
			rep := bench.NewJSONReport(name, base)
			reports[name] = &rep
		}
		return reports[name]
	}
	run := func(name string) error {
		for _, cfg := range cfgs {
			var results []bench.Result
			var err error
			switch name {
			case "fig4":
				results, err = bench.Fig4(cfg, nil, os.Stdout)
				printDiags(results, *stats)
			case "fig5":
				results, err = bench.Fig5(cfg, nil, nil, os.Stdout)
				printDiags(results, *stats)
			case "fig6":
				var usages []bench.MemUsage
				usages, err = bench.Fig6(cfg, os.Stdout)
				if err == nil {
					rep := report(name)
					rep.MemUsages = append(rep.MemUsages, usages...)
				}
			case "ablation":
				results, err = bench.Ablation(cfg, os.Stdout)
			case "scaling":
				var steps []int
				steps, err = parseWorkerSteps(*scaleWorkers)
				if err == nil {
					results, err = bench.WorkerScaling(cfg, steps, os.Stdout)
				}
			case "treedepth":
				results, err = bench.TreeDepthScaling(cfg, nil, os.Stdout)
			case "valsweep":
				results, err = bench.ValueSweep(cfg, nil, os.Stdout)
			case "pipeline":
				results, err = bench.PipelineSweep(cfg, nil, os.Stdout)
				printDiags(results, *stats)
			case "fastpath":
				results, err = bench.Fastpath(cfg, os.Stdout)
				printDiags(results, *stats)
			case "failover":
				var frep *bench.FailoverReport
				frep, err = bench.Failover(cfg, os.Stdout)
				if err == nil {
					report(name).Failover = frep
				}
			case "elastic":
				var erep *bench.ElasticReport
				results, erep, err = bench.Elastic(cfg, os.Stdout)
				if err == nil {
					report(name).Elastic = erep
				}
			case "skew":
				var srep *bench.SkewReport
				results, srep, err = bench.Skew(cfg, nil, os.Stdout)
				if err == nil {
					report(name).Skew = srep
				}
			default:
				return fmt.Errorf("unknown experiment %q", name)
			}
			if err != nil {
				return err
			}
			if len(results) > 0 {
				collected = append(collected, results...)
				rep := report(name)
				rep.Results = append(rep.Results, results...)
			}
			fmt.Println()
		}
		return nil
	}

	var err error
	if flag.Arg(0) == "all" {
		for _, name := range []string{"fig4", "fig5", "fig6", "ablation", "pipeline"} {
			if err = run(name); err != nil {
				break
			}
		}
	} else {
		err = run(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sphinxbench:", err)
		os.Exit(1)
	}
	if *metrics {
		// The metrics section is only trustworthy if its histograms account
		// for every round trip the fabric counted. Baselines may hold
		// round trips outside per-op attribution, so only the Sphinx-family
		// verdicts are hard failures.
		bad := 0
		for _, r := range collected {
			if r.Metrics == nil {
				continue
			}
			if !r.Metrics.RTReconciled && strings.HasPrefix(r.System, "Sphinx") {
				fmt.Fprintf(os.Stderr, "sphinxbench: %s %s depth=%d: round trips do not reconcile (op %d, stage %d, fabric %d)\n",
					r.System, r.Workload, r.Depth,
					r.Metrics.OpRTTotal, r.Metrics.StageRTTotal, r.Metrics.FabricRoundTrips)
				bad++
			}
			if l := r.Metrics.LAC; l != nil && l.LACReconciled != nil && !*l.LACReconciled {
				fmt.Fprintf(os.Stderr, "sphinxbench: %s %s depth=%d: speculative round trips do not reconcile (hits %d, refutes %d, aborts %d, fabric %d)\n",
					r.System, r.Workload, r.Depth,
					l.SpecHits, l.SpecRefutes, l.SpecAborts, r.Metrics.FabricRoundTrips)
				bad++
			}
			if h := r.Metrics.Hot; h != nil && h.HotReconciled != nil && !*h.HotReconciled {
				fmt.Fprintf(os.Stderr, "sphinxbench: %s %s depth=%d: hot-replica round trips do not reconcile (hits %d, refutes %d, aborts %d)\n",
					r.System, r.Workload, r.Depth, h.HotHits, h.HotRefutes, h.HotAborts)
				bad++
			}
		}
		if bad > 0 {
			fmt.Fprintf(os.Stderr, "sphinxbench: %d result(s) failed metrics reconciliation\n", bad)
			os.Exit(1)
		}
	}
	// The skew experiment carries its own acceptance gate: hot-replicated
	// throughput at theta=0.99, flattened per-MN imbalance, and the
	// trust-but-verify reconciliation of every replica read. A failed
	// gate fails the run regardless of -metrics (the experiment forces
	// metrics on internally).
	if rep := reports["skew"]; rep != nil && rep.Skew != nil && !rep.Skew.Pass {
		fmt.Fprintf(os.Stderr, "sphinxbench: skew gate failed (speedup@0.99 %.2f, gate %.1fx)\n",
			rep.Skew.SpeedupAt099, rep.Skew.Gate)
		os.Exit(1)
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "sphinxbench:", err)
			os.Exit(1)
		}
		for name, rep := range reports {
			path := filepath.Join(*jsonDir, "BENCH_"+name+".json")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sphinxbench:", err)
				os.Exit(1)
			}
			err = rep.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "sphinxbench:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	if *csvPath != "" && len(collected) > 0 {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sphinxbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := bench.WriteCSV(collected, f); err != nil {
			fmt.Fprintln(os.Stderr, "sphinxbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d rows to %s\n", len(collected), *csvPath)
	}
	if live != nil && *serveLinger > 0 {
		fmt.Fprintf(os.Stderr, "lingering %v for final scrapes\n", *serveLinger)
		time.Sleep(*serveLinger)
	}
}

// parseWorkerSteps parses the -scale-workers flag ("1,4,16"); empty
// selects the experiment's default sweep.
func parseWorkerSteps(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	steps := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -scale-workers element %q", p)
		}
		steps = append(steps, n)
	}
	return steps, nil
}

// printDiags dumps Sphinx routing diagnostics after an experiment when
// requested (filter hit rates, false positives, restarts). Fault and
// recovery counters print whenever a run saw faults or lock recovery,
// independent of the -stats flag.
func printDiags(results []bench.Result, enabled bool) {
	if enabled {
		fmt.Println("# sphinx diagnostics")
		for _, r := range results {
			if d := r.Diag(); d != "" {
				fmt.Printf("%-14s %-8s %-6s %s\n", r.System, r.Workload, r.Dataset, d)
			}
		}
	}
	header := false
	for _, r := range results {
		if fl := r.FaultLine(); fl != "" {
			if !header {
				fmt.Println("# fault recovery")
				header = true
			}
			fmt.Printf("%-14s %-8s %-6s %s\n", r.System, r.Workload, r.Dataset, fl)
		}
	}
}
