// Command sphinxbench regenerates the paper's evaluation figures on the
// simulated disaggregated-memory cluster.
//
// Usage:
//
//	sphinxbench [flags] fig4|fig5|fig6|ablation|all
//
// Each experiment prints an aligned table; see EXPERIMENTS.md for the
// mapping to the paper's figures and the expected shapes.
package main

import (
	"flag"
	"fmt"
	"os"

	"sphinx/internal/bench"
	"sphinx/internal/dataset"
	"sphinx/internal/fabric"
)

func main() {
	keys := flag.Int("keys", 100_000, "loaded keys per dataset (paper: 60M)")
	workers := flag.Int("workers", 24, "worker count for fig4/fig6/ablation")
	ops := flag.Int("ops", 2000, "operations per worker per workload run")
	seed := flag.Int64("seed", 1, "dataset and workload seed")
	mns := flag.Int("mns", 3, "memory nodes")
	cns := flag.Int("cns", 3, "compute nodes")
	only := flag.String("dataset", "", "restrict to one dataset: u64 or email")
	theta := flag.Float64("theta", 0.99, "zipfian request skew (paper: 0.99)")
	stats := flag.Bool("stats", false, "print Sphinx routing diagnostics per run")
	faults := flag.Int("faults", 0, "inject fabric faults at this per-64k rate per batch (transient + timeout); 0 disables")
	csvPath := flag.String("csv", "", "also write results as CSV to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] fig4|fig5|fig6|ablation|scaling|valsweep|all\n", os.Args[0])
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	base := bench.Config{
		Keys:         *keys,
		Workers:      *workers,
		OpsPerWorker: *ops,
		Seed:         *seed,
		MNs:          *mns,
		CNs:          *cns,
		Theta:        *theta,
	}
	if *faults > 0 {
		base.Faults = &fabric.FaultPlan{
			Seed:            uint64(*seed),
			TransientPer64k: uint32(*faults),
			TimeoutPer64k:   uint32(*faults) / 2,
		}
	}
	var cfgs []bench.Config
	switch *only {
	case "":
		cfgs = bench.DatasetConfigs(base)
	case "u64":
		base.Dataset = dataset.U64
		cfgs = []bench.Config{base}
	case "email":
		base.Dataset = dataset.Email
		cfgs = []bench.Config{base}
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *only)
		os.Exit(2)
	}

	var collected []bench.Result
	run := func(name string) error {
		for _, cfg := range cfgs {
			switch name {
			case "fig4":
				results, err := bench.Fig4(cfg, nil, os.Stdout)
				if err != nil {
					return err
				}
				printDiags(results, *stats)
				collected = append(collected, results...)
			case "fig5":
				results, err := bench.Fig5(cfg, nil, nil, os.Stdout)
				if err != nil {
					return err
				}
				printDiags(results, *stats)
				collected = append(collected, results...)
			case "fig6":
				if _, err := bench.Fig6(cfg, os.Stdout); err != nil {
					return err
				}
			case "ablation":
				results, err := bench.Ablation(cfg, os.Stdout)
				if err != nil {
					return err
				}
				collected = append(collected, results...)
			case "scaling":
				results, err := bench.Scaling(cfg, nil, os.Stdout)
				if err != nil {
					return err
				}
				collected = append(collected, results...)
			case "valsweep":
				results, err := bench.ValueSweep(cfg, nil, os.Stdout)
				if err != nil {
					return err
				}
				collected = append(collected, results...)
			default:
				return fmt.Errorf("unknown experiment %q", name)
			}
			fmt.Println()
		}
		return nil
	}

	var err error
	if flag.Arg(0) == "all" {
		for _, name := range []string{"fig4", "fig5", "fig6", "ablation"} {
			if err = run(name); err != nil {
				break
			}
		}
	} else {
		err = run(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sphinxbench:", err)
		os.Exit(1)
	}
	if *csvPath != "" && len(collected) > 0 {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sphinxbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := bench.WriteCSV(collected, f); err != nil {
			fmt.Fprintln(os.Stderr, "sphinxbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d rows to %s\n", len(collected), *csvPath)
	}
}

// printDiags dumps Sphinx routing diagnostics after an experiment when
// requested (filter hit rates, false positives, restarts). Fault and
// recovery counters print whenever a run saw faults or lock recovery,
// independent of the -stats flag.
func printDiags(results []bench.Result, enabled bool) {
	if enabled {
		fmt.Println("# sphinx diagnostics")
		for _, r := range results {
			if d := r.Diag(); d != "" {
				fmt.Printf("%-14s %-8s %-6s %s\n", r.System, r.Workload, r.Dataset, d)
			}
		}
	}
	header := false
	for _, r := range results {
		if fl := r.FaultLine(); fl != "" {
			if !header {
				fmt.Println("# fault recovery")
				header = true
			}
			fmt.Printf("%-14s %-8s %-6s %s\n", r.System, r.Workload, r.Dataset, fl)
		}
	}
}
