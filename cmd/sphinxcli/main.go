// Command sphinxcli is an interactive shell over a simulated
// disaggregated-memory cluster running one of the three index systems.
// Useful for poking at the index and watching per-operation network costs.
//
//	$ go run ./cmd/sphinxcli
//	sphinx> put LYRICS words-of-a-song
//	ok  (6 round trips, 13.2 µs)
//	sphinx> get LYRICS
//	"words-of-a-song"  (3 round trips, 6.6 µs)
//	sphinx> scan LYR LZ 10
//	...
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sphinx"
)

func main() {
	sysName := flag.String("system", "sphinx", "index system: sphinx, smart or art")
	serveAddr := flag.String("serve", "", "serve live observability HTTP on this address (host:0 for an ephemeral port): /metrics, /snapshot, /traces, /debug/pprof")
	flag.Parse()

	var sys sphinx.System
	switch strings.ToLower(*sysName) {
	case "sphinx":
		sys = sphinx.SystemSphinx
	case "smart":
		sys = sphinx.SystemSMART
	case "art":
		sys = sphinx.SystemART
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *sysName)
		os.Exit(2)
	}

	cluster, err := sphinx.NewCluster(sphinx.Config{System: sys})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	session := cluster.NewComputeNode().NewSession()
	fmt.Printf("%v cluster ready (3 memory nodes, simulated RDMA)\n", sys)
	serving := false
	if *serveAddr != "" {
		_, bound, err := session.ServeObservability(*serveAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		serving = true
		fmt.Printf("observability: http://%s/ (metrics, snapshot, traces, pprof)\n", bound)
	}
	fmt.Println("commands: get K | put K V | update K V | del K | scan LO HI [N] | trace OP ... | stats | metrics | serve [ADDR] | mem | help | quit")

	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("sphinx> ")
		if !in.Scan() {
			break
		}
		fields := strings.Fields(in.Text())
		if len(fields) == 0 {
			continue
		}
		before := session.Stats()
		cmd := strings.ToLower(fields[0])
		switch {
		case cmd == "quit" || cmd == "exit":
			return
		case cmd == "help":
			fmt.Println("get K | put K V | update K V | del K | scan LO HI [N] | stats | metrics | mem | quit")
			fmt.Println("trace get K | trace put K V | trace update K V | trace del K  — one op's round-trip timeline")
			fmt.Println("serve [ADDR]  — start the live observability HTTP endpoint (default 127.0.0.1:0)")
			continue
		case cmd == "trace" && len(fields) >= 3:
			tr, err := traceOp(session, fields[1:])
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(tr.Format())
			continue
		case cmd == "metrics":
			if err := session.Registry().Snapshot().WritePrometheus(os.Stdout, "sphinx"); err != nil {
				fmt.Println("error:", err)
			}
			continue
		case cmd == "serve":
			addr := "127.0.0.1:0"
			if len(fields) == 2 {
				addr = fields[1]
			}
			_, bound, err := session.ServeObservability(addr)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			serving = true
			fmt.Printf("observability: http://%s/ (metrics, snapshot, traces, pprof)\n", bound)
			continue
		case cmd == "stats":
			st := session.Stats()
			fmt.Printf("session: %d round trips, %d verbs, %d B read, %d B written, %.1f µs virtual\n",
				st.RoundTrips, st.Verbs, st.BytesRead, st.BytesWritten, float64(st.ClockPs)/1e6)
			if sc, ok := session.SphinxStats(); ok {
				fmt.Printf("sphinx:  %d filter hits, %d fallbacks, %d root walks, %d false positives, %d restarts\n",
					sc.FilterHits, sc.FilterFallbacks, sc.RootStarts, sc.FalsePositives, sc.Restarts)
			}
			continue
		case cmd == "mem":
			mu, err := cluster.MemoryUsage()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("MN memory: inner %d B, leaves %d B, hash table %d B, metadata %d B\n",
				mu.InnerNodeBytes, mu.LeafBytes, mu.HashTableBytes, mu.MetadataBytes)
			continue
		case cmd == "get" && len(fields) == 2:
			v, ok, err := session.Get([]byte(fields[1]))
			report(err, func() { fmt.Printf("%q", v) }, ok, "not found")
		case cmd == "put" && len(fields) == 3:
			err := session.Put([]byte(fields[1]), []byte(fields[2]))
			report(err, func() { fmt.Print("ok") }, true, "")
		case cmd == "update" && len(fields) == 3:
			ok, err := session.Update([]byte(fields[1]), []byte(fields[2]))
			report(err, func() { fmt.Print("ok") }, ok, "not found")
		case cmd == "del" && len(fields) == 2:
			ok, err := session.Delete([]byte(fields[1]))
			report(err, func() { fmt.Print("deleted") }, ok, "not found")
		case cmd == "scan" && (len(fields) == 3 || len(fields) == 4):
			limit := 0
			if len(fields) == 4 {
				limit, _ = strconv.Atoi(fields[3])
			}
			kvs, err := session.Scan([]byte(fields[1]), []byte(fields[2]), limit)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			for _, kv := range kvs {
				fmt.Printf("  %-24s %q\n", kv.Key, kv.Value)
			}
			fmt.Printf("%d keys", len(kvs))
		default:
			fmt.Println("bad command; try: help")
			continue
		}
		d := session.Stats()
		fmt.Printf("  (%d round trips, %.1f µs)\n",
			d.RoundTrips-before.RoundTrips, float64(d.ClockPs-before.ClockPs)/1e6)
	}
	if serving {
		// Stdin closed (e.g. piped commands ran out) but the HTTP endpoint
		// was requested; keep serving until the process is killed.
		fmt.Println("stdin closed; observability server stays up (interrupt to exit)")
		select {}
	}
}

// traceOp runs one operation under Session.Trace. The op's own outcome
// (found / not found) is part of the timeline's value, so only hard
// errors are reported.
func traceOp(s *sphinx.Session, args []string) (*sphinx.Trace, error) {
	op := strings.ToLower(args[0])
	key := []byte(args[1])
	switch {
	case op == "get":
		return s.Trace("get "+args[1], func() error {
			_, _, err := s.Get(key)
			return err
		})
	case op == "del" || op == "delete":
		return s.Trace("del "+args[1], func() error {
			_, err := s.Delete(key)
			return err
		})
	case op == "put" && len(args) == 3:
		return s.Trace("put "+args[1], func() error {
			return s.Put(key, []byte(args[2]))
		})
	case op == "update" && len(args) == 3:
		return s.Trace("update "+args[1], func() error {
			_, err := s.Update(key, []byte(args[2]))
			return err
		})
	default:
		return nil, fmt.Errorf("trace: usage: trace get K | trace put K V | trace update K V | trace del K")
	}
}

func report(err error, success func(), ok bool, missing string) {
	switch {
	case err != nil:
		fmt.Print("error: ", err)
	case !ok:
		fmt.Print(missing)
	default:
		success()
	}
}
