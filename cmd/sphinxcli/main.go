// Command sphinxcli is an interactive shell over a simulated
// disaggregated-memory cluster running one of the three index systems.
// Useful for poking at the index and watching per-operation network costs.
//
//	$ go run ./cmd/sphinxcli
//	sphinx> put LYRICS words-of-a-song
//	ok  (6 round trips, 13.2 µs)
//	sphinx> get LYRICS
//	"words-of-a-song"  (3 round trips, 6.6 µs)
//	sphinx> scan LYR LZ 10
//	...
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"sphinx"
)

func main() {
	sysName := flag.String("system", "sphinx", "index system: sphinx, smart or art")
	serveAddr := flag.String("serve", "", "serve live observability HTTP on this address (host:0 for an ephemeral port): /metrics, /snapshot, /traces, /debug/pprof")
	topAddr := flag.String("top", "", "one-shot: fetch /mn from a live observability endpoint (URL or host:port), render the per-MN table, and exit")
	watch := flag.Duration("watch", 0, "with -top, redraw the table at this interval until interrupted")
	flag.Parse()

	if *topAddr != "" {
		if err := topRemote(*topAddr, *watch); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var sys sphinx.System
	switch strings.ToLower(*sysName) {
	case "sphinx":
		sys = sphinx.SystemSphinx
	case "smart":
		sys = sphinx.SystemSMART
	case "art":
		sys = sphinx.SystemART
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *sysName)
		os.Exit(2)
	}

	cluster, err := sphinx.NewCluster(sphinx.Config{System: sys})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	session := cluster.NewComputeNode().NewSession()
	fmt.Printf("%v cluster ready (3 memory nodes, simulated RDMA)\n", sys)
	serving := false
	if *serveAddr != "" {
		_, bound, err := session.ServeObservability(*serveAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		serving = true
		fmt.Printf("observability: http://%s/ (metrics, snapshot, traces, pprof)\n", bound)
	}
	fmt.Println("commands: get K | put K V | update K V | del K | scan LO HI [N] | trace OP ... | stats | metrics | top | serve [ADDR] | mem | help | quit")

	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("sphinx> ")
		if !in.Scan() {
			break
		}
		fields := strings.Fields(in.Text())
		if len(fields) == 0 {
			continue
		}
		before := session.Stats()
		cmd := strings.ToLower(fields[0])
		switch {
		case cmd == "quit" || cmd == "exit":
			return
		case cmd == "help":
			fmt.Println("get K | put K V | update K V | del K | scan LO HI [N] | stats | metrics | mem | quit")
			fmt.Println("trace get K | trace put K V | trace update K V | trace del K  — one op's round-trip timeline")
			fmt.Println("top  — per-MN load table (busy ratio, verb share, occupancy, health) plus SLOs and alerts")
			fmt.Println("serve [ADDR]  — start the live observability HTTP endpoint (default 127.0.0.1:0)")
			continue
		case cmd == "top":
			// Advance the plane to the session's virtual now so the table
			// reflects everything this shell has done, then render it.
			cluster.SampleObservability(session.Stats().ClockPs)
			renderTop(os.Stdout, cluster.Observability())
			continue
		case cmd == "trace" && len(fields) >= 3:
			tr, err := traceOp(session, fields[1:])
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(tr.Format())
			continue
		case cmd == "metrics":
			if err := session.Registry().Snapshot().WritePrometheus(os.Stdout, "sphinx"); err != nil {
				fmt.Println("error:", err)
			}
			continue
		case cmd == "serve":
			addr := "127.0.0.1:0"
			if len(fields) == 2 {
				addr = fields[1]
			}
			_, bound, err := session.ServeObservability(addr)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			serving = true
			fmt.Printf("observability: http://%s/ (metrics, snapshot, traces, pprof)\n", bound)
			continue
		case cmd == "stats":
			st := session.Stats()
			fmt.Printf("session: %d round trips, %d verbs, %d B read, %d B written, %.1f µs virtual\n",
				st.RoundTrips, st.Verbs, st.BytesRead, st.BytesWritten, float64(st.ClockPs)/1e6)
			if sc, ok := session.SphinxStats(); ok {
				fmt.Printf("sphinx:  %d filter hits, %d fallbacks, %d root walks, %d false positives, %d restarts\n",
					sc.FilterHits, sc.FilterFallbacks, sc.RootStarts, sc.FalsePositives, sc.Restarts)
			}
			continue
		case cmd == "mem":
			mu, err := cluster.MemoryUsage()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("MN memory: inner %d B, leaves %d B, hash table %d B, metadata %d B\n",
				mu.InnerNodeBytes, mu.LeafBytes, mu.HashTableBytes, mu.MetadataBytes)
			continue
		case cmd == "get" && len(fields) == 2:
			v, ok, err := session.Get([]byte(fields[1]))
			report(err, func() { fmt.Printf("%q", v) }, ok, "not found")
		case cmd == "put" && len(fields) == 3:
			err := session.Put([]byte(fields[1]), []byte(fields[2]))
			report(err, func() { fmt.Print("ok") }, true, "")
		case cmd == "update" && len(fields) == 3:
			ok, err := session.Update([]byte(fields[1]), []byte(fields[2]))
			report(err, func() { fmt.Print("ok") }, ok, "not found")
		case cmd == "del" && len(fields) == 2:
			ok, err := session.Delete([]byte(fields[1]))
			report(err, func() { fmt.Print("deleted") }, ok, "not found")
		case cmd == "scan" && (len(fields) == 3 || len(fields) == 4):
			limit := 0
			if len(fields) == 4 {
				limit, _ = strconv.Atoi(fields[3])
			}
			kvs, err := session.Scan([]byte(fields[1]), []byte(fields[2]), limit)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			for _, kv := range kvs {
				fmt.Printf("  %-24s %q\n", kv.Key, kv.Value)
			}
			fmt.Printf("%d keys", len(kvs))
		default:
			fmt.Println("bad command; try: help")
			continue
		}
		d := session.Stats()
		fmt.Printf("  (%d round trips, %.1f µs)\n",
			d.RoundTrips-before.RoundTrips, float64(d.ClockPs-before.ClockPs)/1e6)
	}
	if serving {
		// Stdin closed (e.g. piped commands ran out) but the HTTP endpoint
		// was requested; keep serving until the process is killed.
		fmt.Println("stdin closed; observability server stays up (interrupt to exit)")
		select {}
	}
}

// traceOp runs one operation under Session.Trace. The op's own outcome
// (found / not found) is part of the timeline's value, so only hard
// errors are reported.
func traceOp(s *sphinx.Session, args []string) (*sphinx.Trace, error) {
	op := strings.ToLower(args[0])
	key := []byte(args[1])
	switch {
	case op == "get":
		return s.Trace("get "+args[1], func() error {
			_, _, err := s.Get(key)
			return err
		})
	case op == "del" || op == "delete":
		return s.Trace("del "+args[1], func() error {
			_, err := s.Delete(key)
			return err
		})
	case op == "put" && len(args) == 3:
		return s.Trace("put "+args[1], func() error {
			return s.Put(key, []byte(args[2]))
		})
	case op == "update" && len(args) == 3:
		return s.Trace("update "+args[1], func() error {
			_, err := s.Update(key, []byte(args[2]))
			return err
		})
	default:
		return nil, fmt.Errorf("trace: usage: trace get K | trace put K V | trace update K V | trace del K")
	}
}

// topRemote fetches /mn from a live observability endpoint and renders
// the per-MN table; with a watch interval it clears and redraws until
// interrupted, giving a top(1)-style live view of a running cluster.
func topRemote(addr string, watch time.Duration) error {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + "/mn"
	client := &http.Client{Timeout: 5 * time.Second}
	for {
		snap, err := fetchPlane(client, url)
		if err != nil {
			return err
		}
		if watch > 0 {
			fmt.Print("\x1b[H\x1b[2J") // cursor home + clear screen
		}
		renderTop(os.Stdout, snap)
		if watch <= 0 {
			return nil
		}
		time.Sleep(watch)
	}
}

func fetchPlane(client *http.Client, url string) (sphinx.PlaneSnapshot, error) {
	var snap sphinx.PlaneSnapshot
	resp, err := client.Get(url)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return snap, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, fmt.Errorf("%s: decoding /mn: %w", url, err)
	}
	return snap, nil
}

// renderTop prints the human view of the observability plane: one row
// per memory node with its latest-tick load, then SLO burn rates and
// any alerts that are not inactive.
func renderTop(w io.Writer, snap sphinx.PlaneSnapshot) {
	fmt.Fprintf(w, "plane: %d ticks, window %.0f µs, virtual now %.1f ms\n",
		snap.Ticks, float64(snap.WindowPs)/1e6, float64(snap.TickPs)/1e9)
	fmt.Fprintf(w, "%-4s %-7s %-8s %8s %8s %7s %9s %8s %9s %7s %7s\n",
		"MN", "MEMBER", "HEALTH", "BUSY", "WAIT", "VERB%", "VERBS/W", "RT/W", "HASHLOAD", "OCCUP", "FAULTS")
	for _, n := range snap.Nodes {
		member := "yes"
		if !n.Member {
			member = "no"
		}
		fmt.Fprintf(w, "%-4d %-7s %-8s %7.1f%% %7.1f%% %6.1f%% %9d %8d %8.1f%% %6.1f%% %7d\n",
			n.Node, member, n.Health,
			100*n.BusyRatio, 100*n.WaitRatio, 100*n.VerbShare,
			n.WindowVerbs, n.WindowRTs,
			100*n.HashLoad, 100*n.ArenaOccupancy, n.Faults)
	}
	for _, s := range snap.SLOs {
		fmt.Fprintf(w, "slo %s (%s p%g < %.2f µs): fast burn %.2f, slow burn %.2f, attainment %.4f\n",
			s.SLO.Name, s.OpName, 100*s.SLO.Quantile, float64(s.SLO.LatencyPs)/1e6,
			s.FastBurn, s.SlowBurn, s.Attainment)
	}
	active := 0
	for _, a := range snap.Alerts {
		if a.State.String() == "inactive" {
			continue
		}
		active++
		fmt.Fprintf(w, "alert %s{%s=%s}: %s (value %.3f, fired %d, resolved %d)\n",
			a.Rule, a.Signal, a.Label, a.State, a.Value, a.Fired, a.Resolved)
	}
	if active == 0 {
		fmt.Fprintf(w, "alerts: none active (%d rules evaluated)\n", len(snap.Alerts))
	}
}

func report(err error, success func(), ok bool, missing string) {
	switch {
	case err != nil:
		fmt.Print("error: ", err)
	case !ok:
		fmt.Print(missing)
	default:
		success()
	}
}
