package sphinx

import (
	"sphinx/internal/core"
	"sphinx/internal/rart"
)

// OpResult is one pipelined operation's outcome; fields are valid after
// Pipeline.Wait (or on return from MultiGet/MultiPut).
type OpResult struct {
	// Value is the value found (Get only).
	Value []byte
	// Found reports presence: the key existed (Get/Update/Delete) or was
	// overwritten rather than created (Put).
	Found bool
	// KVs holds Scan results.
	KVs []KV
	// Err is the operation's own error; operations fail independently.
	Err error
	// LatencyPs is the operation's virtual-time latency, measured across
	// its own in-flight window.
	LatencyPs int64
}

// Pipeline batches operations for asynchronous pipelined execution: up
// to depth operations are kept in flight at once, and verbs of
// same-stage operations coalesce into shared doorbell batches — e.g.
// eight concurrent Gets issue their eight SFC hash-entry reads as one
// batch, one round trip. Queue operations (each returns a result handle
// immediately), then call Wait to execute.
//
// On Sphinx clusters the session keeps one set of pipeline lanes alive
// across Wait calls, so their directory caches stay warm; all network
// accounting lands on the session's own counters. SMART and ART clusters
// keep their sequential clients (as the paper's baselines do): their
// pipelines execute the queue one operation at a time.
//
// A Pipeline is single-goroutine, like its Session. After Wait the
// pipeline is empty and can be reused.
type Pipeline struct {
	s       *Session
	depth   int
	ops     []*core.PipeOp
	results []*OpResult
}

// Pipeline starts an operation batch executing up to depth operations in
// flight (depth < 1 means 1, i.e. sequential behavior).
func (s *Session) Pipeline(depth int) *Pipeline {
	if depth < 1 {
		depth = 1
	}
	return &Pipeline{s: s, depth: depth}
}

func (p *Pipeline) add(op *core.PipeOp) *OpResult {
	r := &OpResult{}
	p.ops = append(p.ops, op)
	p.results = append(p.results, r)
	return r
}

// Get queues a point lookup.
func (p *Pipeline) Get(key []byte) *OpResult {
	return p.add(&core.PipeOp{Kind: core.PipeGet, Key: key})
}

// Put queues an upsert.
func (p *Pipeline) Put(key, value []byte) *OpResult {
	return p.add(&core.PipeOp{Kind: core.PipePut, Key: key, Value: value})
}

// Update queues an update-if-present.
func (p *Pipeline) Update(key, value []byte) *OpResult {
	return p.add(&core.PipeOp{Kind: core.PipeUpdate, Key: key, Value: value})
}

// Delete queues a removal.
func (p *Pipeline) Delete(key []byte) *OpResult {
	return p.add(&core.PipeOp{Kind: core.PipeDelete, Key: key})
}

// Scan queues a range scan over [lo, hi] (nil bounds are open), at most
// limit pairs when limit > 0.
func (p *Pipeline) Scan(lo, hi []byte, limit int) *OpResult {
	return p.add(&core.PipeOp{Kind: core.PipeScan, Key: lo, Hi: hi, Limit: limit})
}

// Wait executes every queued operation and fills the result handles.
// The returned error is the first per-operation error, as a convenience
// for callers that treat the batch as all-or-nothing; inspect each
// OpResult.Err to handle partial failure.
func (p *Pipeline) Wait() error {
	if len(p.ops) == 0 {
		return nil
	}
	if p.s.sphinx != nil {
		p.s.corePipeline().Run(p.ops, p.depth)
	} else {
		p.runSequential()
	}
	var first error
	for i, op := range p.ops {
		r := p.results[i]
		r.Value, r.Found, r.Err = op.Val, op.Found, op.Err
		r.LatencyPs = op.EndPs - op.StartPs
		if len(op.KVs) > 0 {
			r.KVs = make([]KV, len(op.KVs))
			for j, kv := range op.KVs {
				r.KVs[j] = KV{Key: kv.Key, Value: kv.Value}
			}
		}
		if first == nil && op.Err != nil {
			first = op.Err
		}
	}
	p.ops, p.results = nil, nil
	return first
}

// runSequential executes the queue one op at a time on the session's
// own client — the baseline systems' execution model.
func (p *Pipeline) runSequential() {
	for _, op := range p.ops {
		op.StartPs = p.s.fc.Clock()
		switch op.Kind {
		case core.PipeGet:
			op.Val, op.Found, op.Err = p.s.Get(op.Key)
		case core.PipePut:
			op.Err = p.s.Put(op.Key, op.Value)
		case core.PipeUpdate:
			op.Found, op.Err = p.s.Update(op.Key, op.Value)
		case core.PipeDelete:
			op.Found, op.Err = p.s.Delete(op.Key)
		case core.PipeScan:
			var kvs []KV
			kvs, op.Err = p.s.Scan(op.Key, op.Hi, op.Limit)
			op.KVs = op.KVs[:0]
			for _, kv := range kvs {
				op.KVs = append(op.KVs, rart.KV{Key: kv.Key, Value: kv.Value})
			}
		}
		op.EndPs = p.s.fc.Clock()
	}
}

// corePipeline lazily creates the session's pipelined executor, flushing
// (and accounting) on the session's own fabric client and sharing the
// compute node's filter cache across lanes.
func (s *Session) corePipeline() *core.Pipeline {
	if pl := s.pl.Load(); pl != nil {
		return pl
	}
	pl := core.NewPipeline(s.cn.cluster.sphinxShared, s.fc, core.Options{
		Filter:           s.cn.filter,
		LeafCache:        s.cn.lac,
		DisableLeafCache: s.cn.cluster.cfg.DisableLeafCache,
		// Lanes report their stage-attributed share of each flush into
		// the session metrics; the flush itself accounts on s.fc, whose
		// observer is already the same metrics set. Lanes share the
		// session's index distributions.
		Observer: s.metrics,
		Index:    s.index,
	})
	s.pl.Store(pl)
	return pl
}

// MultiGet looks up keys with up to depth in flight, coalescing the
// round trips of concurrent lookups. results[i] corresponds to keys[i].
func (s *Session) MultiGet(keys [][]byte, depth int) []OpResult {
	p := s.Pipeline(depth)
	handles := make([]*OpResult, len(keys))
	for i, k := range keys {
		handles[i] = p.Get(k)
	}
	p.Wait()
	return collect(handles)
}

// MultiPut upserts pairs with up to depth in flight. results[i].Found
// reports whether pairs[i] overwrote an existing key.
func (s *Session) MultiPut(pairs []KV, depth int) []OpResult {
	p := s.Pipeline(depth)
	handles := make([]*OpResult, len(pairs))
	for i, kv := range pairs {
		handles[i] = p.Put(kv.Key, kv.Value)
	}
	p.Wait()
	return collect(handles)
}

func collect(handles []*OpResult) []OpResult {
	out := make([]OpResult, len(handles))
	for i, h := range handles {
		out[i] = *h
	}
	return out
}
