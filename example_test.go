package sphinx_test

import (
	"fmt"
	"log"

	"sphinx"
)

// The smallest possible use: one cluster, one compute node, one session.
func Example() {
	cluster, err := sphinx.NewCluster(sphinx.Config{Timing: sphinx.TimingInstant})
	if err != nil {
		log.Fatal(err)
	}
	s := cluster.NewComputeNode().NewSession()

	if err := s.Put([]byte("LYRICS"), []byte("words of a song")); err != nil {
		log.Fatal(err)
	}
	v, ok, err := s.Get([]byte("LYRICS"))
	if err != nil || !ok {
		log.Fatal(ok, err)
	}
	fmt.Printf("%s\n", v)
	// Output: words of a song
}

// Range scans return keys in order, respecting both bounds and limits.
func ExampleSession_Scan() {
	cluster, err := sphinx.NewCluster(sphinx.Config{Timing: sphinx.TimingInstant})
	if err != nil {
		log.Fatal(err)
	}
	s := cluster.NewComputeNode().NewSession()
	for _, k := range []string{"ant", "ape", "bat", "bee", "cat"} {
		if err := s.Put([]byte(k), []byte("🐾")); err != nil {
			log.Fatal(err)
		}
	}
	kvs, err := s.Scan([]byte("ap"), []byte("bz"), 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, kv := range kvs {
		fmt.Println(string(kv.Key))
	}
	// Output:
	// ape
	// bat
	// bee
}

// Sessions report their network accounting: the warm Sphinx read path is
// three round trips (hash entry, inner node, leaf).
func ExampleSession_Stats() {
	cluster, err := sphinx.NewCluster(sphinx.Config{})
	if err != nil {
		log.Fatal(err)
	}
	s := cluster.NewComputeNode().NewSession()
	for i := 0; i < 40; i++ {
		if err := s.Put([]byte(fmt.Sprintf("user%04d", i)), []byte("v")); err != nil {
			log.Fatal(err)
		}
	}
	if _, _, err := s.Get([]byte("user0007")); err != nil { // warm the path
		log.Fatal(err)
	}
	before := s.Stats()
	if _, _, err := s.Get([]byte("user0007")); err != nil {
		log.Fatal(err)
	}
	after := s.Stats()
	// The warming Get learned the leaf's address into the CN-side
	// leaf-address cache, so the warm Get is a single verified leaf read.
	fmt.Println("round trips:", after.RoundTrips-before.RoundTrips)
	// Output: round trips: 1
}

// Different systems mount through the same API; here the naive DM-ART
// baseline pays one round trip per tree level instead.
func ExampleConfig_system() {
	cluster, err := sphinx.NewCluster(sphinx.Config{
		System: sphinx.SystemART,
		Timing: sphinx.TimingInstant,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := cluster.NewComputeNode().NewSession()
	if err := s.Put([]byte("key"), []byte("value")); err != nil {
		log.Fatal(err)
	}
	v, _, _ := s.Get([]byte("key"))
	fmt.Printf("%s via %v\n", v, cluster.System())
	// Output: value via ART
}
