// Benchmarks regenerating every figure of the paper's evaluation (§V) at
// reduced scale. Because the cluster's network is simulated in virtual
// time, wall-clock ns/op is meaningless here; each benchmark reports the
// quantities the paper plots as custom metrics:
//
//	Mops_virt   — workload throughput in virtual network time (Fig. 4/5)
//	avgLat_us   — mean operation latency in virtual time (Fig. 5)
//	RT_per_op   — network round trips per operation (§III analysis)
//	bytes_per_op
//	memRatio    — MN memory relative to the plain ART (Fig. 6)
//	inhtOvh_pct — inner-node hash table overhead (Fig. 6)
//
// Run with: go test -bench=. -benchmem
package sphinx_test

import (
	"fmt"
	"testing"

	"sphinx/internal/bench"
	"sphinx/internal/dataset"
	"sphinx/internal/ycsb"
)

// benchScale keeps the full -bench=. sweep to a few minutes. The cmd
// harness (cmd/sphinxbench) runs the same experiments at larger scale.
const (
	benchKeys    = 15_000
	benchWorkers = 12
	benchOps     = 200
)

func benchConfig(kind dataset.Kind) bench.Config {
	return bench.Config{
		Dataset:      kind,
		Keys:         benchKeys,
		Workers:      benchWorkers,
		OpsPerWorker: benchOps,
		Seed:         1,
	}
}

func reportRun(b *testing.B, r bench.Result) {
	b.ReportMetric(r.ThroughputMops, "Mops_virt")
	b.ReportMetric(r.AvgLatUs, "avgLat_us")
	b.ReportMetric(r.RoundTripsPerOp, "RT_per_op")
	b.ReportMetric(r.BytesPerOp, "bytes_per_op")
}

// BenchmarkFig4 regenerates Fig. 4: YCSB throughput for LOAD and A–E, per
// system and dataset.
func BenchmarkFig4(b *testing.B) {
	for _, kind := range []dataset.Kind{dataset.U64, dataset.Email} {
		for _, sys := range bench.PaperSystems {
			b.Run(fmt.Sprintf("%s/%v/LOAD", kind, sys), func(b *testing.B) {
				var last bench.Result
				for i := 0; i < b.N; i++ {
					cl, err := bench.NewCluster(sys, benchConfig(kind))
					if err != nil {
						b.Fatal(err)
					}
					last, err = cl.Load(0)
					if err != nil {
						b.Fatal(err)
					}
				}
				reportRun(b, last)
			})
			cl, err := bench.NewCluster(sys, benchConfig(kind))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cl.Load(0); err != nil {
				b.Fatal(err)
			}
			for _, w := range []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadB, ycsb.WorkloadC, ycsb.WorkloadD, ycsb.WorkloadE} {
				w := w
				b.Run(fmt.Sprintf("%s/%v/%s", kind, sys, w.Name), func(b *testing.B) {
					var last bench.Result
					for i := 0; i < b.N; i++ {
						var err error
						last, err = cl.Run(w, 0, 0)
						if err != nil {
							b.Fatal(err)
						}
					}
					reportRun(b, last)
				})
			}
		}
	}
}

// BenchmarkFig5 regenerates Fig. 5: the YCSB-A throughput–latency curve
// over the worker sweep, per system and dataset.
func BenchmarkFig5(b *testing.B) {
	for _, kind := range []dataset.Kind{dataset.U64, dataset.Email} {
		for _, sys := range bench.PaperSystems {
			cl, err := bench.NewCluster(sys, benchConfig(kind))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cl.Load(0); err != nil {
				b.Fatal(err)
			}
			for _, workers := range []int{6, 48, 192} {
				workers := workers
				b.Run(fmt.Sprintf("%s/%v/workers=%d", kind, sys, workers), func(b *testing.B) {
					var last bench.Result
					for i := 0; i < b.N; i++ {
						var err error
						last, err = cl.Run(ycsb.WorkloadA, workers, 0)
						if err != nil {
							b.Fatal(err)
						}
					}
					reportRun(b, last)
				})
			}
		}
	}
}

// BenchmarkFig6 regenerates Fig. 6: MN-side memory after loading the
// dataset, per system, reporting each system's footprint relative to the
// plain ART and the inner-node hash table's overhead.
func BenchmarkFig6(b *testing.B) {
	for _, kind := range []dataset.Kind{dataset.U64, dataset.Email} {
		// The ART baseline for the ratio.
		artCl, err := bench.NewCluster(bench.ART, benchConfig(kind))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := artCl.Load(0); err != nil {
			b.Fatal(err)
		}
		artMem, err := artCl.MemoryUsage()
		if err != nil {
			b.Fatal(err)
		}
		for _, sys := range []bench.System{bench.ART, bench.Sphinx, bench.SMART} {
			sys := sys
			b.Run(fmt.Sprintf("%s/%v", kind, sys), func(b *testing.B) {
				var mu bench.MemUsage
				for i := 0; i < b.N; i++ {
					cl, err := bench.NewCluster(sys, benchConfig(kind))
					if err != nil {
						b.Fatal(err)
					}
					if _, err := cl.Load(0); err != nil {
						b.Fatal(err)
					}
					mu, err = cl.MemoryUsage()
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(mu.IndexBytes())/float64(artMem.IndexBytes()), "memRatio")
				if sys == bench.Sphinx {
					b.ReportMetric(100*float64(mu.HashBytes())/float64(mu.IndexBytes()), "inhtOvh_pct")
				}
			})
		}
	}
}

// BenchmarkAblation quantifies Sphinx's design choices (see DESIGN.md):
// filter cache on/off/starved and doorbell batching on/off, on YCSB-C.
func BenchmarkAblation(b *testing.B) {
	for _, sys := range []bench.System{bench.Sphinx, bench.SphinxNoSFC, bench.SphinxNoBatch, bench.SphinxTinySFC} {
		cl, err := bench.NewCluster(sys, benchConfig(dataset.Email))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cl.Load(0); err != nil {
			b.Fatal(err)
		}
		sysName := sys.String()
		b.Run(sysName+"/C", func(b *testing.B) {
			var last bench.Result
			for i := 0; i < b.N; i++ {
				var err error
				last, err = cl.Run(ycsb.WorkloadC, 0, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportRun(b, last)
		})
	}
}
