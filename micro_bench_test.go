// Micro-benchmarks for the data structures under the index: these measure
// real CPU work (unlike the figure benchmarks, whose interesting output is
// virtual network time).
package sphinx_test

import (
	"fmt"
	"math/rand"
	"testing"

	"sphinx"

	"sphinx/internal/art"
	"sphinx/internal/cuckoo"
	"sphinx/internal/dataset"
	"sphinx/internal/wire"
	"sphinx/internal/ycsb"
)

func BenchmarkCuckooInsert(b *testing.B) {
	f := cuckoo.New(b.N+1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Insert(wire.Mix64(uint64(i)))
	}
}

func BenchmarkCuckooContains(b *testing.B) {
	f := cuckoo.New(1<<16, 1)
	for i := 0; i < 1<<16; i++ {
		f.Insert(wire.Mix64(uint64(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(wire.Mix64(uint64(i & (1<<16 - 1))))
	}
}

func BenchmarkZipfianDraw(b *testing.B) {
	z := ycsb.NewZipfian(1_000_000, ycsb.DefaultTheta)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.DrawScrambled(rng)
	}
}

func BenchmarkWireLeafEncode(b *testing.B) {
	key := []byte("james.garcia@gmail.com")
	val := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire.EncodeLeaf(wire.StatusIdle, key, val)
	}
}

func BenchmarkWireLeafDecode(b *testing.B) {
	buf := wire.EncodeLeaf(wire.StatusIdle, []byte("james.garcia@gmail.com"), make([]byte, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, ok := wire.DecodeLeaf(buf); !ok {
			b.Fatal("decode failed")
		}
	}
}

func BenchmarkPrefixHash(b *testing.B) {
	key := []byte("james.garcia@gmail.com")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire.PrefixHash42(key)
	}
}

func BenchmarkLocalARTInsert(b *testing.B) {
	keys := dataset.GenerateEmail(100_000, 1)
	var t art.Tree
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert(keys[i%len(keys)], keys[i%len(keys)])
	}
}

func BenchmarkLocalARTGet(b *testing.B) {
	keys := dataset.GenerateEmail(100_000, 1)
	var t art.Tree
	for _, k := range keys {
		t.Insert(k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := t.Get(keys[i%len(keys)]); !ok {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkLocalARTScan100(b *testing.B) {
	var t art.Tree
	for i := 0; i < 100_000; i++ {
		t.Insert([]byte(fmt.Sprintf("scan%07d", i)), []byte("v"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := []byte(fmt.Sprintf("scan%07d", (i*37)%90_000))
		n := 0
		t.Scan(lo, nil, func(k, v []byte) bool {
			n++
			return n < 100
		})
	}
}

func BenchmarkEmailGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dataset.GenerateEmail(1000, int64(i))
	}
}

// The end-to-end operation benchmarks run over TimingInstant so they
// measure CN-side CPU work and allocations (the -benchmem numbers the
// hot-path scratch buffers exist for), not virtual network time.

func benchCluster(b *testing.B, keys [][]byte) (*sphinx.Cluster, *sphinx.Session) {
	b.Helper()
	cluster, err := sphinx.NewCluster(sphinx.Config{Timing: sphinx.TimingInstant})
	if err != nil {
		b.Fatal(err)
	}
	s := cluster.NewComputeNode().NewSession()
	val := make([]byte, 64)
	for _, k := range keys {
		if err := s.Put(k, val); err != nil {
			b.Fatal(err)
		}
	}
	return cluster, s
}

// Allocation budgets on the warm paths (go test -bench 'BenchmarkSphinx'
// -benchmem -benchtime 2000x): before the engine buffer free list, the
// single-backing-array leaf decode and the view-scratch lookup, GetWarm
// cost 23 allocs/op (1281 B); Put and Update 32 allocs/op (1670 B) each.
// After: GetWarm 6 allocs/op (586 B), Put and Update 9 allocs/op (874 B).
func BenchmarkSphinxGetWarm(b *testing.B) {
	keys := dataset.GenerateEmail(20_000, 1)
	_, s := benchCluster(b, keys)
	for _, k := range keys { // warm the filter and directory caches
		if _, ok, err := s.Get(k); err != nil || !ok {
			b.Fatal("warmup miss")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := s.Get(keys[i%len(keys)]); err != nil || !ok {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkSphinxPut(b *testing.B) {
	keys := dataset.GenerateEmail(20_000, 1)
	_, s := benchCluster(b, keys)
	val := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(keys[i%len(keys)], val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSphinxUpdate(b *testing.B) {
	keys := dataset.GenerateEmail(20_000, 1)
	_, s := benchCluster(b, keys)
	val := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, err := s.Update(keys[i%len(keys)], val); err != nil || !ok {
			b.Fatal(err)
		}
	}
}
