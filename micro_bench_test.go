// Micro-benchmarks for the data structures under the index: these measure
// real CPU work (unlike the figure benchmarks, whose interesting output is
// virtual network time).
package sphinx_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"sphinx"

	"sphinx/internal/art"
	"sphinx/internal/core"
	"sphinx/internal/cuckoo"
	"sphinx/internal/dataset"
	"sphinx/internal/wire"
	"sphinx/internal/ycsb"
)

// sinkBool keeps filter lookups from being dead-code-eliminated.
var sinkBool bool

func BenchmarkCuckooInsert(b *testing.B) {
	f := cuckoo.New(b.N+1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Insert(wire.Mix64(uint64(i)))
	}
}

func BenchmarkCuckooContains(b *testing.B) {
	f := cuckoo.New(1<<16, 1)
	for i := 0; i < 1<<16; i++ {
		f.Insert(wire.Mix64(uint64(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(wire.Mix64(uint64(i & (1<<16 - 1))))
	}
}

func BenchmarkZipfianDraw(b *testing.B) {
	z := ycsb.NewZipfian(1_000_000, ycsb.DefaultTheta)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.DrawScrambled(rng)
	}
}

func BenchmarkWireLeafEncode(b *testing.B) {
	key := []byte("james.garcia@gmail.com")
	val := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire.EncodeLeaf(wire.StatusIdle, key, val)
	}
}

func BenchmarkWireLeafDecode(b *testing.B) {
	buf := wire.EncodeLeaf(wire.StatusIdle, []byte("james.garcia@gmail.com"), make([]byte, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, ok := wire.DecodeLeaf(buf); !ok {
			b.Fatal("decode failed")
		}
	}
}

func BenchmarkPrefixHash(b *testing.B) {
	key := []byte("james.garcia@gmail.com")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire.PrefixHash42(key)
	}
}

func BenchmarkLocalARTInsert(b *testing.B) {
	keys := dataset.GenerateEmail(100_000, 1)
	var t art.Tree
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert(keys[i%len(keys)], keys[i%len(keys)])
	}
}

func BenchmarkLocalARTGet(b *testing.B) {
	keys := dataset.GenerateEmail(100_000, 1)
	var t art.Tree
	for _, k := range keys {
		t.Insert(k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := t.Get(keys[i%len(keys)]); !ok {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkLocalARTScan100(b *testing.B) {
	var t art.Tree
	for i := 0; i < 100_000; i++ {
		t.Insert([]byte(fmt.Sprintf("scan%07d", i)), []byte("v"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := []byte(fmt.Sprintf("scan%07d", (i*37)%90_000))
		n := 0
		t.Scan(lo, nil, func(k, v []byte) bool {
			n++
			return n < 100
		})
	}
}

func BenchmarkEmailGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dataset.GenerateEmail(1000, int64(i))
	}
}

// The end-to-end operation benchmarks run over TimingInstant so they
// measure CN-side CPU work and allocations (the -benchmem numbers the
// hot-path scratch buffers exist for), not virtual network time.

func benchCluster(b *testing.B, keys [][]byte) (*sphinx.ComputeNode, *sphinx.Session) {
	b.Helper()
	cluster, err := sphinx.NewCluster(sphinx.Config{Timing: sphinx.TimingInstant})
	if err != nil {
		b.Fatal(err)
	}
	cn := cluster.NewComputeNode()
	s := cn.NewSession()
	val := make([]byte, 64)
	for _, k := range keys {
		if err := s.Put(k, val); err != nil {
			b.Fatal(err)
		}
	}
	return cn, s
}

// Allocation budgets on the warm paths (go test -bench 'BenchmarkSphinx'
// -benchmem -benchtime 2000x): before the engine buffer free list, the
// single-backing-array leaf decode and the view-scratch lookup, GetWarm
// cost 23 allocs/op (1281 B); Put and Update 32 allocs/op (1670 B) each.
// After: GetWarm 6 allocs/op (586 B), Put and Update 9 allocs/op (874 B).
func BenchmarkSphinxGetWarm(b *testing.B) {
	keys := dataset.GenerateEmail(20_000, 1)
	_, s := benchCluster(b, keys)
	for _, k := range keys { // warm the filter and directory caches
		if _, ok, err := s.Get(k); err != nil || !ok {
			b.Fatal("warmup miss")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := s.Get(keys[i%len(keys)]); err != nil || !ok {
			b.Fatal("missing key")
		}
	}
}

// BenchmarkSphinxGetWarmParallel scales the warm read path across
// goroutines, one session each (sessions are single-threaded by contract;
// the shared state under contention is the CN's filter cache and the
// fabric's virtual clock). Run with -cpu 1,4,8 to see the scaling curve.
func BenchmarkSphinxGetWarmParallel(b *testing.B) {
	keys := dataset.GenerateEmail(20_000, 1)
	cn, s := benchCluster(b, keys)
	for _, k := range keys { // warm the shared filter and directory caches
		if _, ok, err := s.Get(k); err != nil || !ok {
			b.Fatal("warmup miss")
		}
	}
	// RunParallel uses GOMAXPROCS goroutines (parallelism 1); hand each a
	// pre-warmed private session via an atomic ticket.
	sessions := make([]*sphinx.Session, runtime.GOMAXPROCS(0))
	for i := range sessions {
		sessions[i] = cn.NewSession()
		for j := 0; j < len(keys); j += 16 {
			if _, ok, err := sessions[i].Get(keys[j]); err != nil || !ok {
				b.Fatal("warmup miss")
			}
		}
	}
	var ticket atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		s := sessions[ticket.Add(1)-1]
		i := 0
		for pb.Next() {
			if _, ok, err := s.Get(keys[i%len(keys)]); err != nil || !ok {
				b.Error("missing key")
				return
			}
			i++
		}
	})
}

func BenchmarkSphinxPut(b *testing.B) {
	keys := dataset.GenerateEmail(20_000, 1)
	_, s := benchCluster(b, keys)
	val := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(keys[i%len(keys)], val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSphinxUpdate(b *testing.B) {
	keys := dataset.GenerateEmail(20_000, 1)
	_, s := benchCluster(b, keys)
	val := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, err := s.Update(keys[i%len(keys)], val); err != nil || !ok {
			b.Fatal(err)
		}
	}
}

// The FilterCache benchmarks compare the lock-free SFC against the
// mutex-guarded baseline (the same shim the sfc_mutex build tag selects)
// under goroutine contention. On a multicore box the lock-free Contains
// curve should scale near-linearly with -cpu while the mutex one stays
// flat; single-threaded (-cpu 1) the two should be within ~10%.

func benchFilterModes(b *testing.B, run func(b *testing.B, mode core.FilterCacheMode)) {
	for _, mode := range []core.FilterCacheMode{core.FilterLockFree, core.FilterMutex} {
		b.Run(mode.String(), func(b *testing.B) { run(b, mode) })
	}
}

func BenchmarkFilterCacheContainsParallel(b *testing.B) {
	benchFilterModes(b, func(b *testing.B, mode core.FilterCacheMode) {
		fc := core.NewFilterCacheMode(1<<16, 1, mode)
		for i := 0; i < 1<<16; i++ {
			fc.Insert(wire.Mix64(uint64(i)))
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := uint64(0)
			for pb.Next() {
				sinkBool = fc.Contains(wire.Mix64(i & (1<<16 - 1)))
				i++
			}
		})
	})
}

func BenchmarkFilterCacheInsertParallel(b *testing.B) {
	benchFilterModes(b, func(b *testing.B, mode core.FilterCacheMode) {
		fc := core.NewFilterCacheMode(1<<16, 1, mode)
		var lane atomic.Uint64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			// Distinct per-goroutine hash streams: sustained insert churn
			// (with evictions once warm — cache semantics) rather than the
			// all-duplicates fast path.
			base := lane.Add(1) << 40
			i := uint64(0)
			for pb.Next() {
				fc.Insert(wire.Mix64(base | i))
				i++
			}
		})
	})
}
