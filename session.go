package sphinx

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"sphinx/internal/artdm"
	"sphinx/internal/core"
	"sphinx/internal/fabric"
	"sphinx/internal/obs"
	"sphinx/internal/racehash"
	"sphinx/internal/rart"
	"sphinx/internal/smart"
)

// Trace is one operation's recorded round-trip timeline; see
// Session.Trace.
type Trace = obs.Trace

// Metrics is a session's always-on metric set: latency and round-trip
// histograms per op kind and per batch stage, on the virtual clock.
type Metrics = obs.Metrics

// Registry unifies a session's counter sets (fabric, index, filter,
// histograms) behind snapshot/diff with Prometheus and JSON exporters.
type Registry = obs.Registry

// Session is one worker's handle on the cluster's index: it owns a network
// endpoint (virtual clock, verb counters) and shares its compute node's
// caches. Sessions are not safe for concurrent use — create one per
// goroutine, as the paper's systems create one context per coroutine.
type Session struct {
	cn *ComputeNode
	fc *fabric.Client

	sphinx *core.Client
	smart  *smart.Client
	art    *artdm.Client

	// pl is the session's pipelined executor (Sphinx only), created on
	// first use and kept so its lanes' directory caches stay warm. An
	// atomic pointer: registry closures aggregate the pipeline's counters
	// from scrape goroutines while the session creates it lazily.
	pl atomic.Pointer[core.Pipeline]

	// metrics (teed with the tail recorder) is installed as the fabric
	// client's batch observer for the session's lifetime; registry is
	// built lazily over it.
	metrics *obs.Metrics
	// index receives SFC/INHT distribution observations from the core
	// client and all pipeline lanes.
	index *obs.IndexMetrics
	// tail is the always-on slow-op sampler: every sequential operation
	// records its round-trip timeline into tailRec, and timelines above
	// the moving p99 for their op kind are retained, pre-explained.
	tail     *obs.TailSampler
	tailRec  *obs.Recorder
	registry *obs.Registry
}

// NewSession opens a session on this compute node.
func (cn *ComputeNode) NewSession() *Session {
	c := cn.cluster
	fc := c.f.NewClient()
	s := &Session{
		cn: cn, fc: fc,
		metrics: obs.NewMetrics(),
		index:   obs.NewIndexMetrics(),
		tail:    obs.NewTailSampler(0, 0), // defaults: p99, 32 samples
		tailRec: obs.NewRecorder(),
	}
	fc.SetObserver(obs.Tee{A: s.metrics, B: s.tailRec})
	switch c.cfg.System {
	case SystemSphinx:
		s.sphinx = core.NewClient(c.sphinxShared, fc, core.Options{
			Filter:           cn.filter,
			LeafCache:        cn.lac,
			DisableLeafCache: c.cfg.DisableLeafCache,
			Hot:              cn.hotset,
			HotSetBytes:      int(c.cfg.HotSetBytes),
			DisableHot:       c.cfg.DisableHotReplicas,
			Index:            s.index,
		})
		s.sphinx.SetRecorder(s.tailRec)
	case SystemSMART:
		s.smart = smart.NewClient(c.smartShared, fc, smart.Options{Cache: cn.cache})
	case SystemART:
		s.art = artdm.NewClient(c.artShared, fc, rart.Config{})
	}
	return s
}

// beginOp arms the tail recorder for one operation and captures the
// start clock and round-trip count; its results feed observeOp via
// `defer s.observeOp(s.beginOp(kind))`.
func (s *Session) beginOp(k obs.OpKind) (obs.OpKind, int64, uint64) {
	start := s.fc.Clock()
	s.tailRec.BeginReuse(k.String(), start)
	return k, start, s.fc.RoundTrips()
}

// observeOp records one finished operation into the session metrics and
// offers its recorded timeline to the tail sampler, which clones and
// retains it if the operation landed above the moving tail threshold.
func (s *Session) observeOp(k obs.OpKind, startPs int64, rt0 uint64) {
	end := s.fc.Clock()
	s.metrics.ObserveOp(k, end-startPs, s.fc.RoundTrips()-rt0)
	s.tailRec.End(end)
	s.tail.Offer(k, s.tailRec.Trace())
}

// Get returns the value stored for key.
func (s *Session) Get(key []byte) (value []byte, ok bool, err error) {
	defer s.observeOp(s.beginOp(obs.OpGet))
	switch {
	case s.sphinx != nil:
		return s.sphinx.Search(key)
	case s.smart != nil:
		return s.smart.Search(key)
	default:
		return s.art.Search(key)
	}
}

// Put stores value for key, overwriting any existing value.
func (s *Session) Put(key, value []byte) error {
	defer s.observeOp(s.beginOp(obs.OpPut))
	var err error
	switch {
	case s.sphinx != nil:
		_, err = s.sphinx.Insert(key, value)
	case s.smart != nil:
		_, err = s.smart.Insert(key, value)
	default:
		_, err = s.art.Insert(key, value)
	}
	return err
}

// Update overwrites the value of an existing key, reporting whether the
// key was present; absent keys are left absent.
func (s *Session) Update(key, value []byte) (bool, error) {
	defer s.observeOp(s.beginOp(obs.OpUpdate))
	switch {
	case s.sphinx != nil:
		return s.sphinx.Update(key, value)
	case s.smart != nil:
		return s.smart.Update(key, value)
	default:
		return s.art.Update(key, value)
	}
}

// Delete removes key, reporting whether it was present.
func (s *Session) Delete(key []byte) (bool, error) {
	defer s.observeOp(s.beginOp(obs.OpDelete))
	switch {
	case s.sphinx != nil:
		return s.sphinx.Delete(key)
	case s.smart != nil:
		return s.smart.Delete(key)
	default:
		return s.art.Delete(key)
	}
}

// Scan returns key-value pairs in [lo, hi] (inclusive; nil bounds are
// open) in ascending key order, at most limit pairs when limit > 0.
func (s *Session) Scan(lo, hi []byte, limit int) ([]KV, error) {
	defer s.observeOp(s.beginOp(obs.OpScan))
	var kvs []rart.KV
	var err error
	switch {
	case s.sphinx != nil:
		kvs, err = s.sphinx.Scan(lo, hi, limit)
	case s.smart != nil:
		kvs, err = s.smart.Scan(lo, hi, limit)
	default:
		kvs, err = s.art.Scan(lo, hi, limit)
	}
	if err != nil {
		return nil, err
	}
	out := make([]KV, len(kvs))
	for i, kv := range kvs {
		out[i] = KV{Key: kv.Key, Value: kv.Value}
	}
	return out, nil
}

// RepairReport summarizes one anti-entropy repair sweep; see
// Session.RepairSweep.
type RepairReport struct {
	// Scanned counts anchor records visited across all live memory nodes.
	Scanned uint64
	// Deficits counts missing or stale replica slots the sweep found —
	// the under-replicated gauge. 0 means the sweep proved the cluster
	// fully replicated.
	Deficits uint64
	// Copied counts replicas the sweep re-published.
	Copied uint64
	// Remaining counts records the sweep could not repair this pass
	// (transient races or unreachable sources); they are retried by the
	// next sweep.
	Remaining uint64
}

// RepairSweep runs one online anti-entropy pass over the replicated
// entry store: it walks every live node's records and re-publishes any
// replica a surviving node is missing (after a memory-node loss, the
// dead node's replica responsibilities shift to its ring successors).
// Sweeps are idempotent and run concurrently with serving sessions;
// repeat until a sweep reports Deficits == 0. Requires SystemSphinx with
// Config.Replication >= 2.
func (s *Session) RepairSweep() (RepairReport, error) {
	if s.sphinx == nil || s.cn.cluster.sphinxShared.FT == nil {
		return RepairReport{}, fmt.Errorf("sphinx: repair sweep requires SystemSphinx with Replication >= 2")
	}
	rep, err := s.sphinx.RepairSweep()
	return RepairReport{
		Scanned:   rep.Scanned,
		Deficits:  rep.Deficits,
		Copied:    rep.Copied,
		Remaining: rep.Remaining,
	}, err
}

// MigrateReport summarizes one elastic-membership migration sweep; see
// Session.MigrateSweep.
type MigrateReport struct {
	// Epoch is the placement epoch the sweep ran against.
	Epoch uint64
	// ScannedNodes / ScannedLeaves count tree objects the sweep visited.
	ScannedNodes  uint64
	ScannedLeaves uint64
	// MovedNodes / MovedLeaves count tree objects relocated onto their new
	// owners this pass.
	MovedNodes  uint64
	MovedLeaves uint64
	// AnchorsScanned / AnchorsCopied / AnchorsRemoved count replicated
	// anchor records visited, re-replicated and retired (Replication >= 2
	// clusters only).
	AnchorsScanned uint64
	AnchorsCopied  uint64
	AnchorsRemoved uint64
	// Remaining counts objects the sweep could not settle (lost races,
	// unreachable nodes); the next sweep retries them.
	Remaining uint64
	// Converged reports the sweep found nothing left to move.
	Converged bool
	// CutOver reports this sweep retired the old epoch: the membership
	// change is complete.
	CutOver bool
}

// MigrateSweep runs one online rebalancing pass of an in-flight
// membership change (Cluster.AddMemoryNode / DrainMemoryNode): it walks
// the tree and the anchor tables and relocates everything whose placement
// changed, using the same one-sided protocols as foreground operations —
// other sessions keep serving throughout. Sweeps are idempotent; repeat
// until one reports CutOver (a sweep that moved anything cannot cut over,
// because it may have raced a concurrent writer — only a provably clean
// pass closes the transition). With no change in flight it reports
// immediate convergence. Requires SystemSphinx.
func (s *Session) MigrateSweep() (MigrateReport, error) {
	if s.sphinx == nil {
		return MigrateReport{}, fmt.Errorf("sphinx: migration sweep requires SystemSphinx")
	}
	rep, err := s.sphinx.MigrateSweep()
	return MigrateReport{
		Epoch:          rep.Epoch,
		ScannedNodes:   rep.ScannedNodes,
		ScannedLeaves:  rep.ScannedLeaves,
		MovedNodes:     rep.MovedNodes,
		MovedLeaves:    rep.MovedLeaves,
		AnchorsScanned: rep.AnchorsScanned,
		AnchorsCopied:  rep.AnchorsCopied,
		AnchorsRemoved: rep.AnchorsRemoved,
		Remaining:      rep.Remaining,
		Converged:      rep.Converged,
		CutOver:        rep.CutOver,
	}, err
}

// Stats summarizes the session's network activity.
type Stats struct {
	RoundTrips   uint64
	Verbs        uint64
	BytesRead    uint64
	BytesWritten uint64
	// ClockPs is the session's virtual clock: the network time its
	// operations have consumed (0 under TimingInstant).
	ClockPs int64
}

// Stats returns a snapshot of the session's counters.
func (s *Session) Stats() Stats {
	st := s.fc.Stats()
	return Stats{
		RoundTrips:   st.RoundTrips,
		Verbs:        st.Verbs,
		BytesRead:    st.BytesRead,
		BytesWritten: st.BytesWrite,
		ClockPs:      s.fc.Clock(),
	}
}

// SphinxCounters are Sphinx-specific per-session counters: how operations
// were routed (filter cache vs parallel fallback vs root walk) and how
// often the probabilistic machinery misfired.
type SphinxCounters struct {
	Searches, Inserts, Updates, Deletes, Scans uint64
	// FilterHits counts operations routed by a filter-cache hit — the
	// three-round-trip warm path.
	FilterHits uint64
	// FilterFallbacks counts parallel multi-prefix hash reads (filter
	// disabled or useless).
	FilterFallbacks uint64
	// RootStarts counts operations that fell back to a root descent.
	RootStarts uint64
	// FalsePositives counts filter claims the index refuted (<1% of
	// probes per the paper).
	FalsePositives uint64
	// CollisionRetries counts the leaf-level common-prefix detections of
	// §III-B (<0.01% of operations per the paper).
	CollisionRetries uint64
	// Restarts counts coherence-protocol retries (invalidated nodes or
	// leaves observed mid-change).
	Restarts uint64
	// SpecHits counts Gets served by the speculative 1-RT fast path: one
	// leaf read at the cached address, verified in place.
	SpecHits uint64
	// SpecMisses counts Gets with no leaf-address-cache entry (cold keys,
	// or the cache disabled).
	SpecMisses uint64
	// SpecRefutes counts speculative reads the leaf image refuted; the
	// entry is unlearned and the Get falls back to the 3-RT hash path
	// without consuming retry budget.
	SpecRefutes uint64
	// SpecAborts counts speculative reads abandoned without a verdict (a
	// torn or locked leaf, or a transient fabric error); the entry is kept.
	SpecAborts uint64
	// EpochFallbacks counts reads served from the previous placement epoch
	// while a membership change was mid-migration.
	EpochFallbacks uint64
	// HotHits counts Gets served by one verified hot-replica read (the
	// replicated 1-RT path of the hot-spot tolerance layer).
	HotHits uint64
	// HotRefutes counts hot-replica reads refuted in place (retired or
	// mismatched record); the route is unlearned and the Get falls back.
	HotRefutes uint64
	// HotAborts counts hot-replica reads abandoned on a transient fabric
	// fault, with the route kept.
	HotAborts uint64
	// HotPromotes counts keys promoted into replicated placement.
	HotPromotes uint64
	// HotDemotes counts cooled keys torn back down to single-owner.
	HotDemotes uint64
	// HotRefreshes counts writes that republished at least one hot record
	// before acknowledging.
	HotRefreshes uint64
}

// SphinxStats returns Sphinx-specific counters; ok is false for other
// systems.
func (s *Session) SphinxStats() (SphinxCounters, bool) {
	if s.sphinx == nil {
		return SphinxCounters{}, false
	}
	st := s.sphinx.Stats()
	if pl := s.pl.Load(); pl != nil {
		st = st.Add(pl.Stats())
	}
	return SphinxCounters{
		Searches: st.Searches, Inserts: st.Inserts, Updates: st.Updates,
		Deletes: st.Deletes, Scans: st.Scans,
		FilterHits: st.FilterHits, FilterFallbacks: st.FilterFallbacks,
		RootStarts: st.RootStarts, FalsePositives: st.FalsePositives,
		CollisionRetries: st.CollisionRetry, Restarts: st.Restarts,
		SpecHits: st.SpecHits, SpecMisses: st.SpecMisses,
		SpecRefutes: st.SpecRefutes, SpecAborts: st.SpecAborts,
		EpochFallbacks: st.EpochFallbacks,
		HotHits:        st.HotHits, HotRefutes: st.HotRefutes,
		HotAborts: st.HotAborts, HotPromotes: st.HotPromotes,
		HotDemotes: st.HotDemotes, HotRefreshes: st.HotRefreshes,
	}, true
}

// Trace runs op with a per-operation trace recorder armed and returns
// the recorded round-trip timeline alongside op's error. The recorder
// tees into the session's regular metrics observer, so tracing never
// perturbs accounting. Intended for one index operation per call: a cold
// Get traces as the three round trips of §III-B (hash-read, node-read,
// leaf-read); a warm Get served by the speculative leaf-address cache
// traces as ONE round trip (leaf-spec).
func (s *Session) Trace(name string, op func() error) (*Trace, error) {
	rec := obs.NewRecorder()
	rec.Begin(name, s.fc.Clock())
	prev := s.fc.Observer()
	s.fc.SetObserver(obs.Tee{A: prev, B: rec})
	if s.sphinx != nil {
		s.sphinx.SetRecorder(rec)
	}
	err := op()
	if s.sphinx != nil {
		// Restore the always-on tail recorder, not nil: tail sampling
		// continues after an explicit trace.
		s.sphinx.SetRecorder(s.tailRec)
	}
	s.fc.SetObserver(prev)
	rec.End(s.fc.Clock())
	return rec.Trace(), err
}

// ServeObservability starts serving the session's registry over HTTP in
// the background and returns the owning server plus its bound address
// (pass "127.0.0.1:0" for an ephemeral port). Endpoints: /metrics
// (Prometheus text), /snapshot (JSON diff since serving started, or
// ?absolute), /traces (tail-sampled slow-op timelines), /mn /slo
// /alerts (the cluster observability plane), and /debug/pprof. The
// registry is assembled here, on the caller's goroutine, before any
// scrape can race its construction; its counter sources are atomic, so
// scrapes stay race-clean against live operations. Serving also starts
// the plane's wall-clock sampler (process-lifetime, 250 ms cadence) and
// installs this session's histograms as the SLO engine's latency source
// if none is installed yet. Close the returned server to stop serving.
func (s *Session) ServeObservability(addr string) (*http.Server, string, error) {
	c := s.cn.cluster
	c.sloSource.CompareAndSwap(nil, s.metrics)
	h := obs.NewHandler(obs.ServeOptions{Registry: s.Registry(), Tail: s.tail, Plane: c.plane})
	srv, bound, err := obs.Serve(addr, h)
	if err != nil {
		return nil, "", err
	}
	c.plane.EnsureWallTicker(250 * time.Millisecond)
	return srv, bound.String(), nil
}

// Metrics returns the session's always-on metric set.
func (s *Session) Metrics() *Metrics { return s.metrics }

// Tail returns the session's always-on tail sampler: the retained
// slow-op timelines, each annotated with the stage (and index event)
// that bought the extra round trips.
func (s *Session) Tail() *obs.TailSampler { return s.tail }

// Registry returns the session's unified metrics registry, assembling it
// on first use: fabric counters, index counters, filter-cache counters
// and the session histograms, all snapshot-and-diffable and exportable
// as Prometheus text or JSON.
func (s *Session) Registry() *Registry {
	if s.registry != nil {
		return s.registry
	}
	r := obs.NewRegistry()
	r.AddCounterStruct("fabric", func() any { return s.fc.Stats() })
	switch {
	case s.sphinx != nil:
		r.AddCounterStruct("core", func() any {
			st := s.sphinx.Stats()
			if pl := s.pl.Load(); pl != nil {
				st = st.Add(pl.Stats())
			}
			return st
		})
		r.AddCounterStruct("engine", func() any {
			st := s.sphinx.Engine().Stats()
			if pl := s.pl.Load(); pl != nil {
				st = st.Add(pl.EngineStats())
			}
			return st
		})
		r.AddCounterStruct("inht", func() any {
			st := s.sphinx.HashStats()
			if pl := s.pl.Load(); pl != nil {
				st = st.Add(pl.HashStats())
			}
			return st
		})
		if f := s.sphinx.Filter(); f != nil {
			r.AddCounterStruct("filter", func() any { return f.FilterStats() })
			r.AddGauges("sfc", func() map[string]float64 {
				occupied, capacity := f.Occupancy()
				g := map[string]float64{
					"occupied_slots":    float64(occupied),
					"capacity_slots":    float64(capacity),
					"load":              f.Load(),
					"analytic_fp_bound": f.AnalyticFPBound(),
					// Entries currently carrying the second-chance hotness
					// bit — the skew signal the hot-key tracker seeds from.
					"hot_entries": float64(f.HotEntries()),
				}
				// Probes count CN-wide filter traffic; false positives and
				// hits count this session (plus its pipeline lanes). With a
				// single session per CN — the exporter's usual shape — the
				// ratio is the measured per-probe FP rate, comparable to
				// the analytic bound above.
				st := s.sphinx.Stats()
				if pl := s.pl.Load(); pl != nil {
					st = st.Add(pl.Stats())
				}
				fst := f.FilterStats()
				if probes := fst.Hits + fst.Misses; probes > 0 {
					g["false_positive_rate"] = float64(st.FalsePositives) / float64(probes)
				}
				if claims := st.FilterHits + st.FalsePositives; claims > 0 {
					g["fp_per_claim"] = float64(st.FalsePositives) / float64(claims)
				}
				return g
			})
		}
		if lac := s.sphinx.LeafCache(); lac != nil {
			r.AddCounterStruct("lac", func() any { return lac.Stats() })
			r.AddGauges("lac", func() map[string]float64 {
				occupied, capacity := lac.Occupancy()
				g := map[string]float64{
					"occupied_slots": float64(occupied),
					"capacity_slots": float64(capacity),
					"size_bytes":     float64(lac.SizeBytes()),
				}
				st := s.sphinx.Stats()
				if pl := s.pl.Load(); pl != nil {
					st = st.Add(pl.Stats())
				}
				if attempts := st.SpecHits + st.SpecMisses + st.SpecRefutes + st.SpecAborts; attempts > 0 {
					g["hit_rate"] = float64(st.SpecHits) / float64(attempts)
				}
				return g
			})
		}
		if hs := s.sphinx.HotSet(); hs != nil {
			r.AddGauges("hot", func() map[string]float64 {
				st := s.sphinx.Stats()
				if pl := s.pl.Load(); pl != nil {
					st = st.Add(pl.Stats())
				}
				g := map[string]float64{
					"tracker_bytes": float64(hs.SizeBytes()),
				}
				if reads := st.HotHits + st.HotRefutes + st.HotAborts; reads > 0 {
					g["hit_rate"] = float64(st.HotHits) / float64(reads)
				}
				return g
			})
		}
		r.AddGauges("inht", func() map[string]float64 {
			c := s.cn.cluster
			// Scrape the CURRENT placement epoch's tables: elastic
			// membership changes add and retire tables at runtime.
			tables := c.sphinxShared.Tables
			epoch := uint64(0)
			if c.sphinxShared.Members != nil {
				p := c.sphinxShared.Members.Current()
				tables, epoch = p.Tables, p.Epoch
			}
			var u racehash.Usage
			for node, t := range tables {
				u = u.Add(racehash.ReadUsage(c.f.Region(node), t))
			}
			return map[string]float64{
				"epoch":            float64(epoch),
				"load_factor":      u.LoadFactor(),
				"entries":          float64(u.Entries),
				"capacity_entries": float64(u.Capacity),
				"segments":         float64(u.Segments),
				"dir_entries":      float64(u.DirEntries),
			}
		})
		if ft := s.cn.cluster.sphinxShared.FT; ft != nil {
			r.AddGauges("ft", func() map[string]float64 {
				cl := s.cn.cluster
				h := cl.f.Health()
				g := map[string]float64{
					"under_replicated": float64(ft.UnderReplicated()),
				}
				sweeps, copied := ft.RepairTotals()
				g["repair_sweeps"] = float64(sweeps)
				g["repair_copied"] = float64(copied)
				for _, n := range cl.memNodes() {
					g[fmt.Sprintf("node_health{node=%q}", fmt.Sprint(uint64(n)))] = float64(h.State(n))
				}
				return g
			})
		}
		s.index.Register(r)
	case s.smart != nil:
		r.AddCounterStruct("smart", func() any { return s.smart.ClientStats() })
	}
	// The cluster observability plane: mn_* per-node load families,
	// slo_* burn rates, alert_* states. System-agnostic — collectors
	// read the fabric and MN-side structures directly.
	s.cn.cluster.plane.Register(r)
	r.AddCounters("tail", s.tail.Counters)
	r.AddMetrics("session", s.metrics)
	s.registry = r
	return r
}
