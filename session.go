package sphinx

import (
	"sphinx/internal/artdm"
	"sphinx/internal/core"
	"sphinx/internal/fabric"
	"sphinx/internal/rart"
	"sphinx/internal/smart"
)

// Session is one worker's handle on the cluster's index: it owns a network
// endpoint (virtual clock, verb counters) and shares its compute node's
// caches. Sessions are not safe for concurrent use — create one per
// goroutine, as the paper's systems create one context per coroutine.
type Session struct {
	cn *ComputeNode
	fc *fabric.Client

	sphinx *core.Client
	smart  *smart.Client
	art    *artdm.Client

	// pl is the session's pipelined executor (Sphinx only), created on
	// first use and kept so its lanes' directory caches stay warm.
	pl *core.Pipeline
}

// NewSession opens a session on this compute node.
func (cn *ComputeNode) NewSession() *Session {
	c := cn.cluster
	fc := c.f.NewClient()
	s := &Session{cn: cn, fc: fc}
	switch c.cfg.System {
	case SystemSphinx:
		s.sphinx = core.NewClient(c.sphinxShared, fc, core.Options{Filter: cn.filter})
	case SystemSMART:
		s.smart = smart.NewClient(c.smartShared, fc, smart.Options{Cache: cn.cache})
	case SystemART:
		s.art = artdm.NewClient(c.artShared, fc, rart.Config{})
	}
	return s
}

// Get returns the value stored for key.
func (s *Session) Get(key []byte) (value []byte, ok bool, err error) {
	switch {
	case s.sphinx != nil:
		return s.sphinx.Search(key)
	case s.smart != nil:
		return s.smart.Search(key)
	default:
		return s.art.Search(key)
	}
}

// Put stores value for key, overwriting any existing value.
func (s *Session) Put(key, value []byte) error {
	var err error
	switch {
	case s.sphinx != nil:
		_, err = s.sphinx.Insert(key, value)
	case s.smart != nil:
		_, err = s.smart.Insert(key, value)
	default:
		_, err = s.art.Insert(key, value)
	}
	return err
}

// Update overwrites the value of an existing key, reporting whether the
// key was present; absent keys are left absent.
func (s *Session) Update(key, value []byte) (bool, error) {
	switch {
	case s.sphinx != nil:
		return s.sphinx.Update(key, value)
	case s.smart != nil:
		return s.smart.Update(key, value)
	default:
		return s.art.Update(key, value)
	}
}

// Delete removes key, reporting whether it was present.
func (s *Session) Delete(key []byte) (bool, error) {
	switch {
	case s.sphinx != nil:
		return s.sphinx.Delete(key)
	case s.smart != nil:
		return s.smart.Delete(key)
	default:
		return s.art.Delete(key)
	}
}

// Scan returns key-value pairs in [lo, hi] (inclusive; nil bounds are
// open) in ascending key order, at most limit pairs when limit > 0.
func (s *Session) Scan(lo, hi []byte, limit int) ([]KV, error) {
	var kvs []rart.KV
	var err error
	switch {
	case s.sphinx != nil:
		kvs, err = s.sphinx.Scan(lo, hi, limit)
	case s.smart != nil:
		kvs, err = s.smart.Scan(lo, hi, limit)
	default:
		kvs, err = s.art.Scan(lo, hi, limit)
	}
	if err != nil {
		return nil, err
	}
	out := make([]KV, len(kvs))
	for i, kv := range kvs {
		out[i] = KV{Key: kv.Key, Value: kv.Value}
	}
	return out, nil
}

// Stats summarizes the session's network activity.
type Stats struct {
	RoundTrips   uint64
	Verbs        uint64
	BytesRead    uint64
	BytesWritten uint64
	// ClockPs is the session's virtual clock: the network time its
	// operations have consumed (0 under TimingInstant).
	ClockPs int64
}

// Stats returns a snapshot of the session's counters.
func (s *Session) Stats() Stats {
	st := s.fc.Stats()
	return Stats{
		RoundTrips:   st.RoundTrips,
		Verbs:        st.Verbs,
		BytesRead:    st.BytesRead,
		BytesWritten: st.BytesWrite,
		ClockPs:      s.fc.Clock(),
	}
}

// SphinxCounters are Sphinx-specific per-session counters: how operations
// were routed (filter cache vs parallel fallback vs root walk) and how
// often the probabilistic machinery misfired.
type SphinxCounters struct {
	Searches, Inserts, Updates, Deletes, Scans uint64
	// FilterHits counts operations routed by a filter-cache hit — the
	// three-round-trip warm path.
	FilterHits uint64
	// FilterFallbacks counts parallel multi-prefix hash reads (filter
	// disabled or useless).
	FilterFallbacks uint64
	// RootStarts counts operations that fell back to a root descent.
	RootStarts uint64
	// FalsePositives counts filter claims the index refuted (<1% of
	// probes per the paper).
	FalsePositives uint64
	// CollisionRetries counts the leaf-level common-prefix detections of
	// §III-B (<0.01% of operations per the paper).
	CollisionRetries uint64
	// Restarts counts coherence-protocol retries (invalidated nodes or
	// leaves observed mid-change).
	Restarts uint64
}

// SphinxStats returns Sphinx-specific counters; ok is false for other
// systems.
func (s *Session) SphinxStats() (SphinxCounters, bool) {
	if s.sphinx == nil {
		return SphinxCounters{}, false
	}
	st := s.sphinx.Stats()
	if s.pl != nil {
		st = st.Add(s.pl.Stats())
	}
	return SphinxCounters{
		Searches: st.Searches, Inserts: st.Inserts, Updates: st.Updates,
		Deletes: st.Deletes, Scans: st.Scans,
		FilterHits: st.FilterHits, FilterFallbacks: st.FilterFallbacks,
		RootStarts: st.RootStarts, FalsePositives: st.FalsePositives,
		CollisionRetries: st.CollisionRetry, Restarts: st.Restarts,
	}, true
}
