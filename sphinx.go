// Package sphinx is a reproduction of "Sphinx: A High-Performance Hybrid
// Index for Disaggregated Memory With Succinct Filter Cache" (DAC 2025):
// a range index for variable-length keys whose data lives on memory nodes
// reached only through one-sided RDMA-style verbs.
//
// The package bundles three index systems over a simulated
// disaggregated-memory cluster:
//
//   - SystemSphinx — the paper's contribution: an adaptive radix tree whose
//     inner nodes are additionally indexed by a memory-side hash table
//     (one 8-byte entry per node, keyed by full prefix) and filtered by a
//     compute-side cuckoo "succinct filter cache", making a warm search
//     cost three network round trips regardless of tree depth;
//   - SystemSMART — the state-of-the-art baseline it compares against
//     (node-caching ART with Node-256 preallocation);
//   - SystemART — the original adaptive radix tree ported naively.
//
// # Usage
//
//	cluster, _ := sphinx.NewCluster(sphinx.Config{})
//	cn := cluster.NewComputeNode()
//	s := cn.NewSession()
//	s.Put([]byte("LYRICS"), []byte("value"))
//	v, ok, _ := s.Get([]byte("LYRICS"))
//	kvs, _ := s.Scan([]byte("LYR"), []byte("LZ"), 100)
//
// Sessions are single-goroutine handles (one per worker); sessions of the
// same ComputeNode share that CN's caches, exactly as workers share a
// machine in the paper's testbed. The cluster itself is a pure in-process
// simulation: data movement is real, network time is virtual, and every
// session reports its round-trip and byte counts.
package sphinx

import (
	"fmt"
	"sync/atomic"

	"sphinx/internal/artdm"
	"sphinx/internal/consistenthash"
	"sphinx/internal/core"
	"sphinx/internal/fabric"
	"sphinx/internal/mem"
	"sphinx/internal/obs"
	"sphinx/internal/racehash"
	"sphinx/internal/smart"
)

// SLO is a per-op-kind latency objective evaluated by the cluster's
// observability plane: at least Quantile of Op operations must complete
// within LatencyPs. See Config.SLOs.
type SLO = obs.SLO

// Alert is the state of one (rule, label) pair in the plane's alert
// engine; see Cluster.Alerts.
type Alert = obs.Alert

// PlaneSnapshot is the cluster observability plane's JSON shape: the
// per-MN load table plus SLO statuses and alert states. See
// Cluster.Observability.
type PlaneSnapshot = obs.PlaneSnapshot

// OpKind identifies an operation kind in SLO targets.
type OpKind = obs.OpKind

// Operation kinds for SLO targets.
const (
	OpGet    = obs.OpGet
	OpPut    = obs.OpPut
	OpUpdate = obs.OpUpdate
	OpDelete = obs.OpDelete
	OpScan   = obs.OpScan
)

// System selects the index implementation a cluster runs.
type System int

// Available index systems.
const (
	SystemSphinx System = iota
	SystemSMART
	SystemART
)

// String names the system.
func (s System) String() string {
	switch s {
	case SystemSphinx:
		return "Sphinx"
	case SystemSMART:
		return "SMART"
	case SystemART:
		return "ART"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// Timing selects the network cost model.
type Timing int

// Timing models.
const (
	// TimingRDMA models the paper's testbed: 2 µs round trips, 100 Gbps-
	// class NICs with per-verb and per-byte costs, and NIC contention.
	// Virtual clocks and operation latencies are meaningful.
	TimingRDMA Timing = iota
	// TimingInstant makes every verb free. Functionality only — use it
	// for examples and tests where time is irrelevant.
	TimingInstant
)

// Config describes a cluster. The zero value is a usable Sphinx cluster
// with three memory nodes and paper-like network timing.
type Config struct {
	// System picks the index implementation (default SystemSphinx).
	System System
	// MemoryNodes is the number of memory nodes (default 3, as in §V-A).
	MemoryNodes int
	// MemoryPerNode is each memory node's region size in bytes
	// (default 256 MiB).
	MemoryPerNode uint64
	// ExpectedKeys sizes the inner-node hash tables (they resize beyond
	// it); default 100 000.
	ExpectedKeys int
	// CacheBytes is the per-compute-node cache budget: the succinct
	// filter cache for Sphinx, the node cache for SMART (default 16 MiB).
	CacheBytes uint64
	// LeafCacheBytes is the per-compute-node budget for the speculative
	// leaf-address cache (SystemSphinx only): the CN-side map that lets a
	// warm Get read its leaf in ONE round trip and verify in place
	// (default 512 KiB — 64K entries of 8 bytes).
	LeafCacheBytes uint64
	// DisableLeafCache turns the speculative 1-RT fast path off: every
	// warm Get pays the full 3-RT hash path. Ablation lever.
	DisableLeafCache bool
	// Timing selects the network cost model.
	Timing Timing
	// Seed makes cache behaviour deterministic.
	Seed int64
	// Replication enables the memory-node fault-tolerance layer
	// (SystemSphinx only): every published entry is written to this many
	// distinct memory nodes, reads fail over to surviving replicas behind
	// a per-node health breaker, and RepairSweep re-replicates after a
	// loss. 0 (the default) disables the layer; values >= 2 enable it
	// (1 is rounded up to 2 — a single replica cannot survive a loss).
	Replication int
	// HotReplicaFactor enables the hot-spot tolerance layer (SystemSphinx
	// only): each CN tracks its hottest keys with a decaying frequency
	// sketch seeded by the filter cache's hotness bit, promotes them into
	// this many replicated read-only records spread over ring successors,
	// and serves their Gets from the least-contended replica (power-of-two
	// choices on per-MN queued-wait). Writes republish or remove the
	// replicas before acknowledging, so reads stay verify-or-fallback
	// correct. 0 (the default) disables the layer; values >= 2 enable it
	// (1 is rounded up to the default factor of 3).
	HotReplicaFactor int
	// HotSetBytes is the per-CN budget of the hot-key tracker (sketch +
	// replica route caches; default 256 KiB). Only meaningful with
	// HotReplicaFactor > 0.
	HotSetBytes uint64
	// DisableHotReplicas turns the hot layer off at the client while the
	// cluster still hosts the tables — the ablation lever for comparing
	// skewed workloads with and without replication on one cluster build.
	DisableHotReplicas bool
	// SLOs configures latency objectives for the cluster observability
	// plane: each is evaluated every sample into fast/slow error-budget
	// burn rates, exported as slo_* metric families and fed to the alert
	// engine. The plane samples when SampleObservability is called
	// (virtual-clock driven, as tests and bench do) or on a wall-clock
	// ticker in -serve mode.
	SLOs []SLO
	// ObservabilityWindowPs is the plane's time-series window length in
	// picoseconds of the sampling clock (default 250 ms of wall time,
	// matched to -serve mode's scrape cadence; virtual-clock drivers
	// pick windows matched to their workload length).
	ObservabilityWindowPs int64
}

func (c Config) withDefaults() Config {
	if c.MemoryNodes == 0 {
		c.MemoryNodes = 3
	}
	if c.MemoryPerNode == 0 {
		c.MemoryPerNode = 256 << 20
	}
	if c.ExpectedKeys == 0 {
		c.ExpectedKeys = 100_000
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 16 << 20
	}
	if c.LeafCacheBytes == 0 {
		c.LeafCacheBytes = 512 << 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// KV is one key-value pair returned by Scan.
type KV struct {
	Key   []byte
	Value []byte
}

// Cluster is a simulated disaggregated-memory cluster hosting one index.
type Cluster struct {
	cfg  Config
	f    *fabric.Fabric
	ring *consistenthash.Ring

	sphinxShared core.Shared
	smartShared  smart.Shared
	artShared    artdm.Shared

	// plane is the cluster observability plane: per-MN windowed load
	// series, SLO burn rates, hysteresis alerts. sloSource is the
	// session metrics set feeding the SLO engine's latency histograms —
	// installed by the first ServeObservability caller (or explicitly by
	// bench harnesses).
	plane     *obs.Plane
	sloSource atomic.Pointer[obs.Metrics]

	nextCN int
}

// NewCluster builds the memory nodes, interconnect and an empty index.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	var netCfg fabric.Config
	switch cfg.Timing {
	case TimingRDMA:
		netCfg = fabric.DefaultConfig()
	case TimingInstant:
		netCfg = fabric.InstantConfig()
	default:
		return nil, fmt.Errorf("sphinx: unknown timing model %d", cfg.Timing)
	}
	f := fabric.New(netCfg)
	nodes := make([]mem.NodeID, cfg.MemoryNodes)
	for i := range nodes {
		nodes[i] = f.AddNode(cfg.MemoryPerNode)
	}
	ring, err := consistenthash.NewChecked(nodes, 0)
	if err != nil {
		return nil, fmt.Errorf("sphinx: building placement ring: %w", err)
	}
	cl := &Cluster{cfg: cfg, f: f, ring: ring}

	switch cfg.System {
	case SystemSphinx:
		if cfg.Replication > 0 {
			cl.sphinxShared, err = core.BootstrapReplicated(f, ring, cfg.ExpectedKeys, cfg.Replication)
		} else {
			cl.sphinxShared, err = core.Bootstrap(f, ring, cfg.ExpectedKeys)
		}
		if err == nil && cfg.HotReplicaFactor > 0 {
			// Hot tables are sized for the promoted working set, which is
			// the head of the distribution, not the keyspace: a few
			// thousand keys per CN is generous (trackers demote beyond it).
			err = core.BootstrapHot(f, &cl.sphinxShared, 4096, cfg.HotReplicaFactor)
		}
	case SystemSMART:
		cl.smartShared, err = smart.Bootstrap(f, ring)
	case SystemART:
		cl.artShared, err = artdm.Bootstrap(f, ring)
	default:
		err = fmt.Errorf("sphinx: unknown system %v", cfg.System)
	}
	if err != nil {
		return nil, err
	}
	cl.plane, err = obs.NewPlane(obs.PlaneOptions{
		WindowPs: cfg.ObservabilityWindowPs,
		Collect:  cl.collectMNs,
		Latency: func(k obs.OpKind) obs.HistSnapshot {
			if m := cl.sloSource.Load(); m != nil {
				return m.OpLatency(k)
			}
			return obs.HistSnapshot{}
		},
		SLOs: cfg.SLOs,
	})
	if err != nil {
		return nil, fmt.Errorf("sphinx: building observability plane: %w", err)
	}
	return cl, nil
}

// collectMNs samples every fabric node for the observability plane:
// NIC accounting, breaker state, membership, hash-table load and arena
// occupancy. MN-side scans (racehash usage, allocator counters) cost no
// fabric round trips, like a management agent running on the node.
func (c *Cluster) collectMNs() []obs.MNSample {
	h := c.f.Health()
	members := make(map[mem.NodeID]bool)
	for _, n := range c.memNodes() {
		members[n] = true
	}
	tables := c.sphinxShared.Tables
	if c.sphinxShared.Members != nil {
		tables = c.sphinxShared.Members.Current().Tables
	}
	ops := c.f.Regions()
	stats := c.f.NICStats()
	out := make([]obs.MNSample, 0, len(stats))
	for _, st := range stats {
		n := st.Node
		state := h.State(n)
		s := obs.MNSample{
			Node: int(n), Member: members[n],
			Health: state.String(), HealthCode: float64(state),
			RoundTrips: st.RoundTrips, Verbs: st.Verbs, Bytes: st.Bytes,
			Faults: st.Faults, BusyPs: st.BusyPs, WaitPs: st.WaitPs,
		}
		if t, ok := tables[n]; ok {
			u := racehash.ReadUsage(c.f.Region(n), t)
			s.HashLoad = u.LoadFactor()
			s.HashEntries = u.Entries
		}
		if !c.f.NodeKilled(n) {
			if mu, err := mem.ReadUsage(ops, n); err == nil {
				for _, b := range mu.ByClass {
					s.ArenaUsed += b
				}
				s.ArenaCap = c.f.RegionSize(n)
			}
		}
		out = append(out, s)
	}
	return out
}

// SampleObservability advances the cluster observability plane to the
// given virtual time: per-MN NIC deltas land in their series windows,
// SLO burn rates are recomputed, and alert rules are stepped. Tests and
// benchmarks drive this from their virtual clocks; -serve mode ticks it
// from a wall-clock sampler instead, so callers there never need it.
func (c *Cluster) SampleObservability(nowPs int64) { c.plane.Tick(nowPs) }

// Alerts returns the alert engine's current state: one entry per
// (rule, label) pair that has ever been evaluated, with firing/resolved
// transition counters. The autoscaler-facing subscription point.
func (c *Cluster) Alerts() []Alert { return c.plane.Alerts() }

// Observability returns the plane's full snapshot: the per-MN load
// table (busy/wait ratios, verb share, occupancy, health, recent
// windows), SLO statuses and alert states.
func (c *Cluster) Observability() PlaneSnapshot { return c.plane.Snapshot() }

// System returns the cluster's index system.
func (c *Cluster) System() System { return c.cfg.System }

// memNodes lists the cluster's member memory nodes under the CURRENT
// placement epoch — elastic membership changes grow and shrink this list,
// so node indices passed to KillMemoryNode etc. are interpreted against
// it. Non-Sphinx systems keep the static bootstrap ring.
func (c *Cluster) memNodes() []mem.NodeID {
	if c.sphinxShared.Members != nil {
		return c.sphinxShared.Members.Current().Ring.Nodes()
	}
	return c.ring.Nodes()
}

// AddMemoryNode grows the cluster online (SystemSphinx only): a fresh
// memory node joins the fabric, its hash tables are bootstrapped, and a
// new placement epoch including it is published. The call returns
// immediately with the node's index (usable with NodeHealth and
// KillMemoryNode); actual rebalancing happens while CNs keep serving, by
// driving Session.MigrateSweep until it reports cutover. At most one
// membership change may be in flight at a time.
func (c *Cluster) AddMemoryNode() (int, error) {
	if c.cfg.System != SystemSphinx {
		return 0, fmt.Errorf("sphinx: elastic membership requires SystemSphinx, not %v", c.cfg.System)
	}
	if c.sphinxShared.Members.Transitioning() {
		return 0, core.ErrTransitionActive
	}
	id := c.f.AddNode(c.cfg.MemoryPerNode)
	p, err := core.BeginAddNode(c.f, c.sphinxShared, id, c.cfg.ExpectedKeys)
	if err != nil {
		return 0, err
	}
	nodes := p.Ring.Nodes()
	for i, n := range nodes {
		if n == id {
			return i, nil
		}
	}
	return 0, fmt.Errorf("sphinx: added node %d missing from new ring", id)
}

// DrainMemoryNode shrinks the cluster online (SystemSphinx only): node i
// leaves the placement gracefully. The node stays alive and readable
// while migration sweeps relocate everything it owns to the surviving
// members; after the cutover nothing references it. This is the planned
// counterpart of KillMemoryNode's crash failure — see
// docs/failure-model.md. The node hosting the pinned tree root cannot be
// drained, and the last remaining node cannot be removed.
func (c *Cluster) DrainMemoryNode(i int) error {
	if c.cfg.System != SystemSphinx {
		return fmt.Errorf("sphinx: elastic membership requires SystemSphinx, not %v", c.cfg.System)
	}
	nodes := c.memNodes()
	if i < 0 || i >= len(nodes) {
		return fmt.Errorf("sphinx: memory node %d out of range [0,%d)", i, len(nodes))
	}
	_, err := core.BeginDrainNode(c.sphinxShared, nodes[i])
	return err
}

// Epoch reports the current placement epoch: 0 at bootstrap, +1 per
// membership change. Always 0 for non-Sphinx systems.
func (c *Cluster) Epoch() uint64 {
	if c.sphinxShared.Members == nil {
		return 0
	}
	return c.sphinxShared.Members.Current().Epoch
}

// MigrationPending reports whether a membership change is still
// mid-migration (drive Session.MigrateSweep to finish it).
func (c *Cluster) MigrationPending() bool {
	return c.sphinxShared.Members != nil && c.sphinxShared.Members.Transitioning()
}

// MemoryNodes reports the current member count.
func (c *Cluster) MemoryNodes() int { return len(c.memNodes()) }

// KillMemoryNode permanently removes memory node i (0-based) from the
// cluster: every verb addressed to it fails with a permanent-loss error
// from now on, and the shared health breaker marks it dead on first
// contact. With Replication >= 2 the cluster keeps serving from the
// surviving replicas; without replication the node's data is simply gone.
func (c *Cluster) KillMemoryNode(i int) error {
	nodes := c.memNodes()
	if i < 0 || i >= len(nodes) {
		return fmt.Errorf("sphinx: memory node %d out of range [0,%d)", i, len(nodes))
	}
	c.f.KillNode(nodes[i])
	return nil
}

// NodeHealth reports the health breaker's view of memory node i:
// "closed" (healthy), "open" (suspected down, probing), "dead"
// (permanently lost).
func (c *Cluster) NodeHealth(i int) (string, error) {
	nodes := c.memNodes()
	if i < 0 || i >= len(nodes) {
		return "", fmt.Errorf("sphinx: memory node %d out of range [0,%d)", i, len(nodes))
	}
	return c.f.Health().State(nodes[i]).String(), nil
}

// UnderReplicated reports the latest repair sweep's replica-deficit
// gauge: how many replica slots the last RepairSweep found missing or
// stale. 0 after a sweep means the cluster is fully replicated. Always 0
// when the fault-tolerance layer is disabled.
func (c *Cluster) UnderReplicated() uint64 {
	if c.sphinxShared.FT == nil {
		return 0
	}
	return c.sphinxShared.FT.UnderReplicated()
}

// MemoryUsage reports the MN-side memory footprint by object class.
type MemoryUsage struct {
	InnerNodeBytes uint64
	LeafBytes      uint64
	HashTableBytes uint64
	MetadataBytes  uint64
	TotalBytes     uint64
}

// MemoryUsage sums allocation counters across all memory nodes.
func (c *Cluster) MemoryUsage() (MemoryUsage, error) {
	var u MemoryUsage
	ops := c.f.Regions()
	for _, node := range c.memNodes() {
		nu, err := mem.ReadUsage(ops, node)
		if err != nil {
			return u, err
		}
		u.MetadataBytes += nu.ByClass[mem.ClassMeta]
		u.InnerNodeBytes += nu.ByClass[mem.ClassInner]
		u.LeafBytes += nu.ByClass[mem.ClassLeaf]
		u.HashTableBytes += nu.ByClass[mem.ClassHash]
	}
	u.TotalBytes = u.MetadataBytes + u.InnerNodeBytes + u.LeafBytes + u.HashTableBytes
	return u, nil
}

// ComputeNode models one compute-side machine: its sessions share the
// CN-local cache (the succinct filter cache for Sphinx, the node cache
// for SMART), while each session owns its own network endpoint.
type ComputeNode struct {
	cluster *Cluster
	id      int
	filter  *core.FilterCache
	lac     *core.LeafCache
	hotset  *core.HotSet
	cache   *smart.NodeCache
}

// NewComputeNode adds a compute node to the cluster.
func (c *Cluster) NewComputeNode() *ComputeNode {
	cn := &ComputeNode{cluster: c, id: c.nextCN}
	c.nextCN++
	switch c.cfg.System {
	case SystemSphinx:
		cn.filter = core.NewFilterCacheBytes(c.cfg.CacheBytes, uint64(c.cfg.Seed+int64(cn.id))|1)
		if !c.cfg.DisableLeafCache {
			cn.lac = core.NewLeafCacheBytes(c.cfg.LeafCacheBytes, uint64(c.cfg.Seed+int64(cn.id)))
		}
		if hot := c.sphinxShared.Hot; hot != nil && !c.cfg.DisableHotReplicas {
			// One tracker per CN, shared by its sessions, so promotion
			// decisions see the CN's aggregate traffic — the same sharing
			// shape as the filter cache.
			cn.hotset = core.NewHotSet(c.cfg.HotSetBytes, uint64(c.cfg.Seed+int64(cn.id)), hot.R)
		}
	case SystemSMART:
		cn.cache = smart.NewNodeCache(c.cfg.CacheBytes)
	}
	return cn
}

// CacheBytes reports the CN cache's current memory footprint: for Sphinx
// the succinct filter cache plus the speculative leaf-address cache.
func (cn *ComputeNode) CacheBytes() uint64 {
	switch {
	case cn.filter != nil:
		total := cn.filter.SizeBytes()
		if cn.lac != nil {
			total += cn.lac.SizeBytes()
		}
		if cn.hotset != nil {
			total += cn.hotset.SizeBytes()
		}
		return total
	case cn.cache != nil:
		return cn.cache.Stats().UsedBytes
	default:
		return 0
	}
}
