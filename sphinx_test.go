package sphinx

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestFacadeAllSystems(t *testing.T) {
	for _, sys := range []System{SystemSphinx, SystemSMART, SystemART} {
		t.Run(sys.String(), func(t *testing.T) {
			cluster, err := NewCluster(Config{System: sys, Timing: TimingInstant})
			if err != nil {
				t.Fatal(err)
			}
			s := cluster.NewComputeNode().NewSession()
			for i := 0; i < 200; i++ {
				k := []byte(fmt.Sprintf("key-%04d", i))
				if err := s.Put(k, []byte(fmt.Sprint(i))); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 200; i++ {
				k := []byte(fmt.Sprintf("key-%04d", i))
				v, ok, err := s.Get(k)
				if err != nil || !ok || string(v) != fmt.Sprint(i) {
					t.Fatalf("Get(%q) = %q,%v,%v", k, v, ok, err)
				}
			}
			kvs, err := s.Scan([]byte("key-0050"), []byte("key-0059"), 0)
			if err != nil || len(kvs) != 10 {
				t.Fatalf("scan: %d,%v", len(kvs), err)
			}
			for i := 1; i < len(kvs); i++ {
				if bytes.Compare(kvs[i-1].Key, kvs[i].Key) >= 0 {
					t.Fatal("scan unsorted")
				}
			}
			if ok, err := s.Update([]byte("key-0001"), []byte("updated")); err != nil || !ok {
				t.Fatalf("update: %v %v", ok, err)
			}
			if v, _, _ := s.Get([]byte("key-0001")); string(v) != "updated" {
				t.Fatalf("after update: %q", v)
			}
			if ok, err := s.Delete([]byte("key-0001")); err != nil || !ok {
				t.Fatalf("delete: %v %v", ok, err)
			}
			if _, ok, _ := s.Get([]byte("key-0001")); ok {
				t.Fatal("deleted key still present")
			}
		})
	}
}

func TestFacadeStats(t *testing.T) {
	cluster, err := NewCluster(Config{Timing: TimingRDMA})
	if err != nil {
		t.Fatal(err)
	}
	s := cluster.NewComputeNode().NewSession()
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get([]byte("k")); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.RoundTrips == 0 || st.ClockPs == 0 {
		t.Errorf("stats not accumulating: %+v", st)
	}
	sc, ok := s.SphinxStats()
	if !ok || sc.Searches != 1 || sc.Inserts != 1 {
		t.Errorf("sphinx counters: %+v ok=%v", sc, ok)
	}
	mu, err := cluster.MemoryUsage()
	if err != nil || mu.TotalBytes == 0 {
		t.Errorf("memory usage: %+v err=%v", mu, err)
	}
	if mu.HashTableBytes == 0 {
		t.Error("Sphinx cluster reports no hash-table memory")
	}
}

func TestFacadeSharedFilterAcrossSessions(t *testing.T) {
	cluster, err := NewCluster(Config{Timing: TimingInstant})
	if err != nil {
		t.Fatal(err)
	}
	cn := cluster.NewComputeNode()
	writer := cn.NewSession()
	for i := 0; i < 100; i++ {
		if err := writer.Put([]byte(fmt.Sprintf("shared/%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// A sibling session on the same CN benefits from the shared filter.
	reader := cn.NewSession()
	for i := 0; i < 100; i++ {
		if _, ok, err := reader.Get([]byte(fmt.Sprintf("shared/%03d", i))); err != nil || !ok {
			t.Fatalf("reader miss %d: %v", i, err)
		}
	}
	sc, _ := reader.SphinxStats()
	if sc.FilterHits == 0 {
		t.Error("sibling session never hit the shared filter cache")
	}
	if cn.CacheBytes() == 0 {
		t.Error("CN cache reports zero bytes")
	}
}

func TestFacadeConcurrentSessions(t *testing.T) {
	cluster, err := NewCluster(Config{Timing: TimingRDMA})
	if err != nil {
		t.Fatal(err)
	}
	const cns = 3
	const perCN = 4
	nodes := make([]*ComputeNode, cns)
	for i := range nodes {
		nodes[i] = cluster.NewComputeNode()
	}
	var wg sync.WaitGroup
	errs := make(chan error, cns*perCN)
	for c := 0; c < cns; c++ {
		for w := 0; w < perCN; w++ {
			wg.Add(1)
			go func(c, w int) {
				defer wg.Done()
				s := nodes[c].NewSession()
				for i := 0; i < 150; i++ {
					k := []byte(fmt.Sprintf("c%d-w%d-%04d", c, w, i))
					if err := s.Put(k, []byte("v")); err != nil {
						errs <- err
						return
					}
					if _, ok, err := s.Get(k); err != nil || !ok {
						errs <- fmt.Errorf("readback %s: ok=%v err=%v", k, ok, err)
						return
					}
				}
			}(c, w)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestConfigDefaults(t *testing.T) {
	cluster, err := NewCluster(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if cluster.System() != SystemSphinx {
		t.Error("default system is not Sphinx")
	}
}

func TestSystemString(t *testing.T) {
	if SystemSphinx.String() != "Sphinx" || SystemSMART.String() != "SMART" || SystemART.String() != "ART" {
		t.Error("system names wrong")
	}
}
