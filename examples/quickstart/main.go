// Quickstart: build a simulated disaggregated-memory cluster, index some
// keys with Sphinx, and run point lookups and a range scan.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sphinx"
)

func main() {
	// A cluster with three memory nodes and paper-like RDMA timing.
	cluster, err := sphinx.NewCluster(sphinx.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// One compute node; its sessions share the succinct filter cache.
	cn := cluster.NewComputeNode()
	s := cn.NewSession()

	// Variable-length keys, including keys that are prefixes of others —
	// the case adaptive radix trees exist for.
	pairs := map[string]string{
		"L":      "the letter",
		"LYR":    "a prefix",
		"LYRA":   "a constellation",
		"LYRE":   "an instrument",
		"LYRIC":  "a poem",
		"LYRICS": "the words of a song",
		"MOON":   "a satellite",
	}
	for k, v := range pairs {
		if err := s.Put([]byte(k), []byte(v)); err != nil {
			log.Fatal(err)
		}
	}

	v, ok, err := s.Get([]byte("LYRICS"))
	if err != nil || !ok {
		log.Fatalf("lookup failed: ok=%v err=%v", ok, err)
	}
	fmt.Printf("LYRICS → %q\n", v)

	fmt.Println("\nrange scan [LYR, LYRIC]:")
	kvs, err := s.Scan([]byte("LYR"), []byte("LYRIC"), 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, kv := range kvs {
		fmt.Printf("  %-8s → %q\n", kv.Key, kv.Value)
	}

	st := s.Stats()
	fmt.Printf("\nnetwork: %d round trips, %d verbs, %d bytes read, %.1f µs of virtual time\n",
		st.RoundTrips, st.Verbs, st.BytesRead, float64(st.ClockPs)/1e6)
	if sc, ok := s.SphinxStats(); ok {
		fmt.Printf("sphinx:  %d filter hits, %d root walks, %d false positives\n",
			sc.FilterHits, sc.RootStarts, sc.FalsePositives)
	}
}
