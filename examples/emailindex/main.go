// Emailindex: the paper's motivating scenario — indexing variable-length
// email addresses on disaggregated memory. Loads a synthetic email
// dataset (matching the paper's length statistics), then shows that warm
// point lookups cost three round trips regardless of how deep the shared
// prefixes make the tree, and runs prefix-range scans.
//
//	go run ./examples/emailindex
package main

import (
	"fmt"
	"log"

	"sphinx"
	"sphinx/internal/dataset"
)

func main() {
	const n = 20000
	keys := dataset.GenerateEmail(n, 42)
	fmt.Printf("dataset: %d synthetic emails, mean length %.2f bytes\n", n, dataset.MeanLen(keys))

	cluster, err := sphinx.NewCluster(sphinx.Config{ExpectedKeys: n})
	if err != nil {
		log.Fatal(err)
	}
	cn := cluster.NewComputeNode()
	s := cn.NewSession()

	for i, k := range keys {
		if err := s.Put(k, []byte(fmt.Sprintf("mailbox-%d", i))); err != nil {
			log.Fatal(err)
		}
	}

	// Warm lookups: measure round trips per op over a sample.
	before := s.Stats()
	const sample = 1000
	for i := 0; i < sample; i++ {
		k := keys[(i*37)%n]
		if _, ok, err := s.Get(k); err != nil || !ok {
			log.Fatalf("lookup %q: ok=%v err=%v", k, ok, err)
		}
	}
	after := s.Stats()
	fmt.Printf("warm lookups: %.2f round trips/op (paper's warm path: 3)\n",
		float64(after.RoundTrips-before.RoundTrips)/sample)

	// Prefix scan: all james.* addresses at gmail-like domains.
	fmt.Println("\nfirst 10 addresses in [james, jamet):")
	kvs, err := s.Scan([]byte("james"), []byte("jamesz"), 10)
	if err != nil {
		log.Fatal(err)
	}
	for _, kv := range kvs {
		fmt.Printf("  %-32s %s\n", kv.Key, kv.Value)
	}

	mu, err := cluster.MemoryUsage()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMN memory: %.1f MiB tree (%.1f MiB inner, %.1f MiB leaves), %.1f MiB hash table (%.1f%% overhead)\n",
		float64(mu.InnerNodeBytes+mu.LeafBytes)/(1<<20),
		float64(mu.InnerNodeBytes)/(1<<20), float64(mu.LeafBytes)/(1<<20),
		float64(mu.HashTableBytes)/(1<<20),
		100*float64(mu.HashTableBytes)/float64(mu.InnerNodeBytes+mu.LeafBytes))
	fmt.Printf("CN cache: %.1f KiB succinct filter cache for %d keys\n",
		float64(cn.CacheBytes())/1024, n)
}
