// Ablation: quantify what each of Sphinx's two mechanisms buys, using the
// benchmark harness directly. Runs YCSB-C (read-only) over the email
// dataset with the full system, with the succinct filter cache disabled
// (hash-table-only: the Θ(L)-entries mode of paper §III-B's analysis),
// and with doorbell batching disabled.
//
//	go run ./examples/ablation
package main

import (
	"fmt"
	"log"
	"os"

	"sphinx/internal/bench"
	"sphinx/internal/dataset"
	"sphinx/internal/ycsb"
)

func main() {
	cfg := bench.Config{
		Dataset:      dataset.Email,
		Keys:         30_000,
		Workers:      24,
		OpsPerWorker: 500,
	}
	fmt.Println("What does each Sphinx mechanism contribute? (YCSB-C, email keys)")
	fmt.Println()
	fmt.Println(bench.ResultHeader())

	type row struct {
		sys  bench.System
		note string
	}
	rows := []row{
		{bench.Sphinx, "full system: filter cache → 1 hash entry read"},
		{bench.SphinxNoSFC, "no filter: reads Θ(key length) hash entries in parallel"},
		{bench.SphinxNoBatch, "no doorbell batching: every verb pays a round trip"},
		{bench.SphinxTinySFC, "starved filter: constant second-chance eviction"},
	}
	var baseline bench.Result
	for i, r := range rows {
		cl, err := bench.NewCluster(r.sys, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := cl.Load(0); err != nil {
			log.Fatal(err)
		}
		res, err := cl.Run(ycsb.WorkloadC, 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Row())
		fmt.Printf("    ^ %s\n", r.note)
		if i == 0 {
			baseline = res
		}
	}
	fmt.Println()
	fmt.Printf("baseline Sphinx: %.2f round trips and %.0f bytes per read\n",
		baseline.RoundTripsPerOp, baseline.BytesPerOp)
	fmt.Fprintln(os.Stdout, "the filter cache trades CN-local bits for remote bandwidth;",
		"batching trades NIC doorbells for round trips")
}
