// Multiclient: several compute nodes operating on one Sphinx index
// concurrently, demonstrating the coherence story of paper §III-B — the
// filter caches of other CNs stay valid while one CN restructures the
// remote tree (node type switches, path splits), because they track only
// prefix existence.
//
//	go run ./examples/multiclient
package main

import (
	"fmt"
	"log"
	"sync"

	"sphinx"
)

func main() {
	cluster, err := sphinx.NewCluster(sphinx.Config{})
	if err != nil {
		log.Fatal(err)
	}

	const cns = 3
	const workersPerCN = 4
	const keysPerWorker = 2000

	nodes := make([]*sphinx.ComputeNode, cns)
	for i := range nodes {
		nodes[i] = cluster.NewComputeNode()
	}

	// Phase 1: all CNs write interleaved key ranges concurrently. The
	// shared upper tree levels grow through every node type, forcing type
	// switches and compressed-path splits under contention.
	var wg sync.WaitGroup
	for c := 0; c < cns; c++ {
		for w := 0; w < workersPerCN; w++ {
			wg.Add(1)
			go func(c, w int) {
				defer wg.Done()
				s := nodes[c].NewSession()
				for i := 0; i < keysPerWorker; i++ {
					k := []byte(fmt.Sprintf("tenant/%02d/user/%06d", (c*workersPerCN+w)%8, i))
					if err := s.Put(k, []byte(fmt.Sprintf("cn%d", c))); err != nil {
						log.Fatalf("cn%d put: %v", c, err)
					}
				}
			}(c, w)
		}
	}
	wg.Wait()
	fmt.Printf("loaded %d keys from %d sessions across %d CNs\n",
		cns*workersPerCN*keysPerWorker, cns*workersPerCN, cns)

	// Phase 2: every CN reads keys written by every other CN. Their
	// filter caches never saw those inserts — they learn lazily during
	// traversals and stay coherent despite the restructuring.
	var total, filterHits uint64
	var mu sync.Mutex
	for c := 0; c < cns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s := nodes[c].NewSession()
			for w := 0; w < cns*workersPerCN; w++ {
				for i := 0; i < keysPerWorker; i += 97 {
					k := []byte(fmt.Sprintf("tenant/%02d/user/%06d", w%8, i))
					if _, ok, err := s.Get(k); err != nil || !ok {
						log.Fatalf("cn%d read %q: ok=%v err=%v", c, k, ok, err)
					}
				}
			}
			st, _ := s.SphinxStats()
			mu.Lock()
			total += st.Searches
			filterHits += st.FilterHits
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	fmt.Printf("cross-CN reads: %d searches, %.1f%% resolved through each CN's own filter cache\n",
		total, 100*float64(filterHits)/float64(total))

	// Phase 3: concurrent updates + reads on hot keys, exercising the
	// checksum-based in-place update protocol under contention.
	for c := 0; c < cns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s := nodes[c].NewSession()
			for i := 0; i < 1000; i++ {
				k := []byte(fmt.Sprintf("tenant/00/user/%06d", i%10))
				if i%2 == 0 {
					if _, err := s.Update(k, []byte(fmt.Sprintf("cn%d-%d", c, i))); err != nil {
						log.Fatalf("cn%d update: %v", c, err)
					}
				} else if _, _, err := s.Get(k); err != nil {
					log.Fatalf("cn%d read: %v", c, err)
				}
			}
		}(c)
	}
	wg.Wait()
	fmt.Println("hot-key update/read storm completed with coherent results")
}
