module sphinx

go 1.22
